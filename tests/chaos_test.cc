// Chaos tests: the fault-injection framework (sim::FaultInjector) and the
// failure-hardened distributed execution path — task retries, replica
// failover, connection pruning, 2PC crash recovery at every phase boundary,
// clean rebalance aborts, and the citus_stat_failures view.
#include <gtest/gtest.h>

#include <algorithm>

#include "citus/deploy.h"
#include "citus/rebalancer.h"
#include "common/str.h"
#include "pool/pooler.h"
#include "sim/fault.h"

namespace citusx::citus {
namespace {

// ---------------------------------------------------------------------------
// Net-layer faults against a plain (no Citus) cluster.
// ---------------------------------------------------------------------------

class ChaosNetTest : public ::testing::Test {
 protected:
  void MakeCluster(const sim::CostModel& cost, int num_workers) {
    cluster_ = std::make_unique<net::Cluster>(&sim_, cost, num_workers);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  void TearDown() override {
    sim_.Shutdown();
    cluster_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<net::Cluster> cluster_;
};

TEST_F(ChaosNetTest, ScheduledCrashAndRestartAreDelivered) {
  MakeCluster(sim::DefaultCostModel(), 2);
  sim_.faults().ScheduleCrash(1 * sim::kSecond, "worker1", 2 * sim::kSecond);
  RunSim([&] {
    engine::Node* w1 = cluster_->directory().Find("worker1");
    ASSERT_NE(w1, nullptr);
    EXPECT_FALSE(w1->is_down());
    sim_.WaitFor(1500 * sim::kMillisecond);  // t = 1.5 s: crashed
    EXPECT_TRUE(w1->is_down());
    sim_.WaitFor(2 * sim::kSecond);  // t = 3.5 s: restarted
    EXPECT_FALSE(w1->is_down());
    EXPECT_EQ(w1->restart_epoch(), 1u);
    EXPECT_EQ(sim_.faults().injected(sim::FaultKind::kCrash), 1);
    EXPECT_EQ(sim_.faults().injected(sim::FaultKind::kRestart), 1);
    EXPECT_EQ(sim_.faults().injected_on("worker1"), 2);
    EXPECT_EQ(sim_.faults().total_injected(), 2);
  });
}

TEST_F(ChaosNetTest, GateCountsRejectedConnections) {
  sim::CostModel cost = sim::DefaultCostModel();
  cost.max_connections = 2;
  MakeCluster(cost, 1);
  RunSim([&] {
    auto c1 = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(c1.ok());
    auto c2 = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(c2.ok());
    auto c3 = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_FALSE(c3.ok());
    EXPECT_EQ(c3.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(c3.status().error_class(), ErrorClass::kRetryableTransient);
    EXPECT_EQ(cluster_->directory().GateFor("worker1")->rejected(), 1);
    EXPECT_GE(cluster_->directory()
                  .Find("worker1")
                  ->metrics()
                  .CounterValue("net.admission_rejected"),
              1);
    (*c1)->Close();
    (*c2)->Close();
  });
}

TEST_F(ChaosNetTest, RefusedConnectionsFault) {
  MakeCluster(sim::DefaultCostModel(), 1);
  RunSim([&] {
    sim_.faults().SetRefuseConnections("worker1", true);
    auto c = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_FALSE(c.ok());
    EXPECT_TRUE(c.status().IsUnavailable()) << c.status().ToString();
    sim_.faults().SetRefuseConnections("worker1", false);
    auto c2 = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(c2.ok()) << c2.status().ToString();
    EXPECT_GE(sim_.faults().injected(sim::FaultKind::kRefusal), 1);
    (*c2)->Close();
  });
}

TEST_F(ChaosNetTest, OpenWithRetryOutlastsShortOutage) {
  MakeCluster(sim::DefaultCostModel(), 1);
  sim_.faults().ScheduleCrash(1 * sim::kMillisecond, "worker1",
                              50 * sim::kMillisecond);
  RunSim([&] {
    sim_.WaitFor(2 * sim::kMillisecond);
    ASSERT_TRUE(cluster_->directory().Find("worker1")->is_down());
    sim::Time t0 = sim_.now();
    auto c = cluster_->directory().ConnectWithRetry(nullptr, "worker1");
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    // The connection was only obtainable after the restart at t = 51 ms.
    EXPECT_GE(sim_.now() - t0, 40 * sim::kMillisecond);
    EXPECT_TRUE((*c)->usable());
    (*c)->Close();
  });
}

TEST_F(ChaosNetTest, StatementTimeoutBreaksTheConnection) {
  MakeCluster(sim::DefaultCostModel(), 1);
  RunSim([&] {
    auto c = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Query("CREATE TABLE s (key bigint PRIMARY KEY)").ok());
    (*c)->SetStatementTimeout(1 * sim::kMillisecond);
    sim_.faults().SetDelaySpike("worker1", 10 * sim::kMillisecond,
                                sim_.now() + 1 * sim::kSecond);
    auto r = (*c)->Query("SELECT count(*) FROM s");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
    EXPECT_EQ(r.status().error_class(), ErrorClass::kRetryableTransient);
    EXPECT_TRUE((*c)->broken());
    EXPECT_FALSE((*c)->usable());
    // A desynced connection must not carry further statements.
    auto r2 = (*c)->Query("SELECT count(*) FROM s");
    ASSERT_FALSE(r2.ok());
    EXPECT_TRUE(r2.status().IsConnectionLost()) << r2.status().ToString();
    EXPECT_GE(cluster_->directory()
                  .Find("worker1")
                  ->metrics()
                  .CounterValue("net.statement_timeouts"),
              1);
    (*c)->Close();
  });
}

TEST_F(ChaosNetTest, ServerRestartBreaksEstablishedConnections) {
  MakeCluster(sim::DefaultCostModel(), 1);
  RunSim([&] {
    auto c = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Query("SELECT 1 + 1").ok());
    sim_.faults().Crash("worker1");
    sim_.faults().Restart("worker1");
    // The server is up again but this backend died with the crash.
    EXPECT_FALSE((*c)->usable());
    auto r = (*c)->Query("SELECT 1 + 1");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsConnectionLost() || r.status().IsUnavailable())
        << r.status().ToString();
    auto fresh = cluster_->directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE((*fresh)->Query("SELECT 1 + 1").ok());
    (*c)->Close();
    (*fresh)->Close();
  });
}

// ---------------------------------------------------------------------------
// Failure-hardened distributed execution (Citus deployment).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Transaction-pool admission under faults: a session that cannot attach
// before its deadline gets a retryable error, never a hang.
// ---------------------------------------------------------------------------

TEST_F(ChaosNetTest, PoolAttachFailsRetryablyWhileNodeRefusesConnections) {
  MakeCluster(sim::DefaultCostModel(), 2);
  RunSim([&] {
    pool::PoolerOptions opts;
    opts.pool_size = 2;
    opts.attach_timeout = 50 * sim::kMillisecond;
    pool::TransactionPooler pooler(&sim_, &cluster_->directory(), nullptr,
                                   "worker1", opts);
    sim_.faults().SetRefuseConnections("worker1", true);
    auto session = pooler.OpenSession();
    sim::Time t0 = sim_.now();
    auto r = session->Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << r.status().ToString();
    EXPECT_EQ(r.status().error_class(), ErrorClass::kRetryableTransient);
    // Bounded by the deadline (plus one retry-probe interval), not a hang.
    EXPECT_GE(sim_.now() - t0, opts.attach_timeout);
    EXPECT_LE(sim_.now() - t0, opts.attach_timeout + 4 * opts.retry_interval);
    EXPECT_GT(cluster_->directory()
                  .Find("worker1")
                  ->metrics()
                  .CounterValue("pool.attach_timeouts"),
              0);
    // The fault lifts and the same session works — the failure was
    // retryable in practice, not just in classification.
    sim_.faults().SetRefuseConnections("worker1", false);
    auto ok = session->Query("SELECT 1");
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  });
}

TEST_F(ChaosNetTest, PoolSaturationTimesOutWaiterThenRecovers) {
  MakeCluster(sim::DefaultCostModel(), 2);
  RunSim([&] {
    pool::PoolerOptions opts;
    opts.pool_size = 1;
    opts.attach_timeout = 50 * sim::kMillisecond;
    pool::TransactionPooler pooler(&sim_, &cluster_->directory(), nullptr,
                                   "worker1", opts);
    auto holder = pooler.OpenSession();
    auto waiter = pooler.OpenSession();
    // holder pins the only backend for the whole transaction block.
    ASSERT_TRUE(holder->Query("BEGIN").ok());
    auto r = waiter->Query("SELECT 1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << r.status().ToString();
    ASSERT_TRUE(holder->Query("COMMIT").ok());
    // The backend detached at the transaction boundary; the waiter's retry
    // attaches without growing the pool.
    auto ok = waiter->Query("SELECT 1");
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(pooler.physical_connections(), 1);
  });
}

class ChaosTest : public ::testing::Test {
 protected:
  void Deploy(const DeploymentOptions& options) {
    deploy_ = std::make_unique<Deployment>(&sim_, options);
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  // Placement worker of `key` in distributed table `table`.
  std::string WorkerOf(const std::string& table, int64_t key) {
    const CitusTable* ct = deploy_->metadata().Find(table);
    int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
    return ct->shards[static_cast<size_t>(idx)].placement;
  }

  // Smallest key >= `from` whose shard lives on `worker`.
  int64_t KeyOn(const std::string& table, const std::string& worker,
                int64_t from = 1) {
    int64_t key = from;
    while (WorkerOf(table, key) != worker) key++;
    return key;
  }

  CitusExtension* CoordinatorExt() {
    return deploy_->extension(deploy_->coordinator());
  }

  // CREATE + distribute a two-column table and insert (k1, 0), (k2, 0) with
  // k1 on worker1 and k2 on worker2.
  void SetupPairTable(net::Connection& conn, int64_t* k1, int64_t* k2) {
    ASSERT_TRUE(
        conn.Query("CREATE TABLE t (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE(
        conn.Query("SELECT create_distributed_table('t', 'key')").ok());
    *k1 = KeyOn("t", "worker1");
    *k2 = KeyOn("t", "worker2", *k1 + 1);
    ASSERT_TRUE(conn.Query(StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                                     static_cast<long long>(*k1),
                                     static_cast<long long>(*k2)))
                    .ok());
  }

  int64_t SumV(net::Connection& conn) {
    auto r = conn.Query("SELECT sum(v) FROM t");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  size_t PreparedCount() {
    size_t n = 0;
    for (engine::Node* w : deploy_->workers()) {
      n += w->txns().PreparedGids().size();
    }
    return n;
  }

  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

TEST_F(ChaosTest, ReadRetriesOnDroppedConnection) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    // Warm the pooled coordinator->worker1 connection, then reset it
    // mid-statement: the read must be retried on a fresh connection.
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                      static_cast<long long>(k1)))
                    .ok());
    sim_.faults().DropNextRoundTrips("worker1", 1);
    auto r = (*conn)->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                      static_cast<long long>(k1)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].int_value(), 0);
    CitusExtension* ext = CoordinatorExt();
    EXPECT_GE(ext->metric_task_retries->value(), 1);
    EXPECT_GE(ext->metric_pruned->value(), 1);
    EXPECT_GE(deploy_->cluster()
                  .directory()
                  .Find("worker1")
                  ->metrics()
                  .CounterValue("net.connection_drops"),
              1);
  });
  sim_.Run();
}

TEST_F(ChaosTest, SingleShardQueriesSurviveOtherWorkerDown) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    auto select = [&](int64_t key) {
      return (*conn)->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                      static_cast<long long>(key)));
    };
    // Warm pooled connections to both workers.
    ASSERT_TRUE(select(k1).ok());
    ASSERT_TRUE(select(k2).ok());
    sim_.faults().Crash("worker2");
    // Queries routed to the healthy worker keep working even though the
    // session pool holds a dead connection to worker2.
    auto r1 = select(k1);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    // Queries routed to the dead worker fail with a node-down error.
    auto r2 = select(k2);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().error_class(), ErrorClass::kNodeDown)
        << r2.status().ToString();
    CitusExtension* ext = CoordinatorExt();
    EXPECT_TRUE(ext->IsWorkerMarkedDown("worker2"));
    EXPECT_GE(ext->metric_node_down->value(), 1);
    sim_.faults().Restart("worker2");
    // The pool heals: the broken connection is pruned, a fresh one opened.
    auto r3 = select(k2);
    ASSERT_TRUE(r3.ok()) << r3.status().ToString();
    EXPECT_EQ(r3->rows[0][0].int_value(), 0);
    EXPECT_GE(ext->metric_pruned->value(), 1);
    EXPECT_FALSE(ext->IsWorkerMarkedDown("worker2"));
  });
  sim_.Run();
}

TEST_F(ChaosTest, ReferenceTableReadFailsOverToAnotherReplica) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE r (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE((*conn)->Query("SELECT create_reference_table('r')").ok());
    ASSERT_TRUE((*conn)->Query("INSERT INTO r VALUES (1, 42)").ok());
    // Reference reads prefer the coordinator's local replica; trim it so
    // the read has to route to a worker (the planner's "replicas trimmed"
    // case), then crash that worker.
    CitusTable* rt = deploy_->metadata().Find("r");
    ASSERT_NE(rt, nullptr);
    rt->replica_nodes.erase(std::remove(rt->replica_nodes.begin(),
                                        rt->replica_nodes.end(),
                                        "coordinator"),
                            rt->replica_nodes.end());
    deploy_->metadata().BumpGeneration();
    ASSERT_GE(rt->replica_nodes.size(), 2u);
    // Reads route to the first replica; crash it and the read must fail
    // over to another replica holding the same data.
    sim_.faults().Crash(rt->replica_nodes.front());
    auto r = (*conn)->Query("SELECT v FROM r WHERE key = 1");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].int_value(), 42);
    EXPECT_GE(CoordinatorExt()->metric_failovers->value(), 1);
  });
  sim_.Run();
}

TEST_F(ChaosTest, MultiShardReadReportsPartialFailure) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    ASSERT_EQ(SumV(**conn), 0);
    sim_.faults().Crash("worker2");
    auto r = (*conn)->Query("SELECT sum(v) FROM t");
    ASSERT_FALSE(r.ok());
    std::string msg = r.status().ToString();
    EXPECT_NE(msg.find("partial query failure"), std::string::npos) << msg;
    EXPECT_NE(msg.find("worker2"), std::string::npos) << msg;
    EXPECT_GE(CoordinatorExt()->metric_partial_failures->value(), 1);
    sim_.faults().Restart("worker2");
    EXPECT_EQ(SumV(**conn), 0);
  });
  sim_.Run();
}

TEST_F(ChaosTest, CommitFailureBeforePrepareAbortsEverywhere) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    CitusExtension* ext = CoordinatorExt();
    ext->twophase_fault_hook = [](TwoPhasePoint p) {
      return p == TwoPhasePoint::kBeforePrepare
                 ? Status::Internal("injected crash before prepare")
                 : Status::OK();
    };
    ASSERT_TRUE((*conn)->Query("BEGIN").ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                      static_cast<long long>(k1)))
                    .ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                      static_cast<long long>(k2)))
                    .ok());
    auto c = (*conn)->Query("COMMIT");
    EXPECT_FALSE(c.ok());
    ext->twophase_fault_hook = nullptr;
    CITUSX_IGNORE_STATUS((*conn)->Query("ROLLBACK"),
                         "fault injected on purpose; rollback may fail");
    // Nothing was prepared, nothing committed.
    EXPECT_EQ(PreparedCount(), 0u);
    EXPECT_EQ(SumV(**conn), 0);
  });
  sim_.Run();
}

TEST_F(ChaosTest, CrashAfterPrepareIsRolledBackByRecovery) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.deadlock_poll_interval = 1 * sim::kSecond;
  options.citus.recovery_poll_interval = 5 * sim::kSecond;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    CitusExtension* ext = CoordinatorExt();
    bool fired = false;
    ext->twophase_fault_hook = [&](TwoPhasePoint p) {
      if (p == TwoPhasePoint::kAfterPrepare && !fired) {
        fired = true;
        return Status::Internal("injected crash after prepare");
      }
      return Status::OK();
    };
    ASSERT_TRUE((*conn)->Query("BEGIN").ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 5 WHERE key = %lld",
                                      static_cast<long long>(k1)))
                    .ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 5 WHERE key = %lld",
                                      static_cast<long long>(k2)))
                    .ok());
    auto c = (*conn)->Query("COMMIT");
    EXPECT_FALSE(c.ok());
    ext->twophase_fault_hook = nullptr;
    CITUSX_IGNORE_STATUS((*conn)->Query("ROLLBACK"),
                         "fault injected on purpose; rollback may fail");
    // Both workers hold orphaned prepared transactions; with no commit
    // record, the recovery daemon must ROLLBACK PREPARED them.
    EXPECT_EQ(PreparedCount(), 2u);
    sim_.WaitFor(15 * sim::kSecond);
    EXPECT_EQ(PreparedCount(), 0u);
    EXPECT_EQ(SumV(**conn), 0);
    EXPECT_GE(ext->metric_recovered->value(), 2);
  });
  sim_.Run();
}

TEST_F(ChaosTest, CrashAfterCommitRecordIsCommittedByRecovery) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.deadlock_poll_interval = 1 * sim::kSecond;
  options.citus.recovery_poll_interval = 5 * sim::kSecond;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    CitusExtension* ext = CoordinatorExt();
    // Coordinator "crashes" right after its local commit made the commit
    // records durable: COMMIT PREPARED is never sent from this session.
    ext->suppress_post_commit_2pc_once = true;
    ASSERT_TRUE((*conn)->Query("BEGIN").ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 7 WHERE key = %lld",
                                      static_cast<long long>(k1)))
                    .ok());
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("UPDATE t SET v = 7 WHERE key = %lld",
                                      static_cast<long long>(k2)))
                    .ok());
    // The client was acked: this commit must never be lost.
    ASSERT_TRUE((*conn)->Query("COMMIT").ok());
    EXPECT_EQ(PreparedCount(), 2u);
    sim_.WaitFor(15 * sim::kSecond);
    EXPECT_EQ(PreparedCount(), 0u);
    EXPECT_EQ(SumV(**conn), 14);
    EXPECT_GE(ext->metric_recovered->value(), 2);
  });
  sim_.Run();
}

TEST_F(ChaosTest, ShardMoveAbortsCleanlyWhenTargetDies) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.recovery_poll_interval = 2 * sim::kSecond;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE t (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('t', 'key')").ok());
    std::vector<std::vector<std::string>> rows;
    for (int64_t i = 0; i < 400; i++) {
      rows.push_back({std::to_string(i), std::to_string(i)});
    }
    ASSERT_TRUE((*conn)->CopyIn("t", {}, std::move(rows)).ok());
    const CitusTable* ct = deploy_->metadata().Find("t");
    // Pick a shard on worker2 to move to worker1.
    uint64_t shard_id = 0;
    for (const auto& s : ct->shards) {
      if (s.placement == "worker2") {
        shard_id = s.shard_id;
        break;
      }
    }
    ASSERT_NE(shard_id, 0u);
    std::vector<std::string> before;
    for (const auto& s : ct->shards) before.push_back(s.placement);
    // Slow the target down so the scheduled crash lands mid-copy.
    sim_.faults().SetDelaySpike("worker1", 2 * sim::kMillisecond,
                                sim_.now() + 10 * sim::kSecond);
    sim_.faults().ScheduleCrash(sim_.now() + 5 * sim::kMillisecond, "worker1",
                                100 * sim::kMillisecond);
    CitusExtension* ext = CoordinatorExt();
    Rebalancer rebalancer(ext);
    auto session = deploy_->coordinator()->OpenSession();
    Status mv = rebalancer.MoveShard(*session, shard_id, "worker2", "worker1");
    EXPECT_FALSE(mv.ok());
    // The distributed metadata is untouched: every placement as before.
    for (size_t i = 0; i < ct->shards.size(); i++) {
      EXPECT_EQ(ct->shards[i].placement, before[i]) << "shard " << i;
    }
    // Wait out the restart and a couple of maintenance rounds: the orphaned
    // target placements must be dropped by the deferred cleanup.
    sim_.WaitFor(5 * sim::kSecond);
    EXPECT_EQ(ext->pending_cleanup_count(), 0);
    // All data still readable from the original placements.
    auto r = (*conn)->Query("SELECT count(*) FROM t");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].int_value(), 400);
  });
  sim_.Run();
}

// A worker that crashes mid-metadata-sync comes back stale: it refuses MX
// routing (retryable error, never a wrong answer) until the maintenance
// daemon re-syncs it, after which it coordinates correctly again.
TEST_F(ChaosTest, CrashDuringMetadataSyncLeavesNodeStaleUntilResync) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.deadlock_poll_interval = 1 * sim::kSecond;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    CitusExtension* ext = CoordinatorExt();
    // Crash worker1 right after the sync round marked it unsynced (begin
    // done, payload never shipped): the round fails mid-flight.
    bool fired = false;
    ext->metadata_sync_fault_hook = [&](const std::string& target,
                                        MetadataSyncPoint point) {
      if (target == "worker1" && point == MetadataSyncPoint::kAfterBegin &&
          !fired) {
        fired = true;
        sim_.faults().Crash("worker1");
      }
      return Status::OK();
    };
    auto sync = (*conn)->Query("SELECT citus_sync_metadata()");
    ASSERT_TRUE(sync.ok()) << sync.status().ToString();
    EXPECT_EQ(sync->rows[0][0].int_value(), 1);  // only worker2 made it
    ASSERT_TRUE(fired);
    ext->metadata_sync_fault_hook = nullptr;
    EXPECT_GE(ext->metric_mx_sync_failures->value(), 1);
    sim_.faults().Restart("worker1");
    // Back up but stale: a direct query must be refused retryably.
    CitusExtension* wext = deploy_->extension(
        deploy_->cluster().directory().Find("worker1"));
    EXPECT_FALSE(wext->MxReady());
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    auto r = (*wconn)->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                       static_cast<long long>(k1)));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsStaleMetadataStatus(r.status())) << r.status().ToString();
    EXPECT_EQ(r.status().error_class(), ErrorClass::kRetryableTransient);
    // The maintenance daemon notices (failed round + restart epoch) and
    // re-syncs within a couple of poll rounds.
    sim_.WaitFor(3 * sim::kSecond);
    EXPECT_TRUE(wext->MxReady());
    auto healed = deploy_->Connect("worker1");
    ASSERT_TRUE(healed.ok());
    auto r2 = (*healed)->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                         static_cast<long long>(k1)));
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(r2->rows[0][0].int_value(), 0);
  });
  sim_.Run();
}

// A worker crash landing mid-scan under the vectorized executor must surface
// at the coordinator as a retryable error — never a hang (morsel workers on
// the dead node just stop; the coordinator's task fails fast) and never a
// partial answer. Once the worker restarts, the same query succeeds.
TEST_F(ChaosTest, VectorizedScanSurvivesMidQueryWorkerCrash) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("SET citusx.shard_access_method = 'columnar'").ok());
    ASSERT_TRUE((*conn)->Query("CREATE TABLE big (k bigint, v bigint)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('big', 'k')").ok());
    std::vector<std::vector<std::string>> rows;
    for (int64_t i = 0; i < 30000; i++) {
      rows.push_back({std::to_string(i), std::to_string(i % 100)});
      if (rows.size() == 4000) {
        ASSERT_TRUE((*conn)->CopyIn("big", {}, std::move(rows)).ok());
        rows.clear();
      }
    }
    if (!rows.empty()) {
      ASSERT_TRUE((*conn)->CopyIn("big", {}, std::move(rows)).ok());
    }
    const char* q = "SELECT count(*), sum(v) FROM big WHERE v >= 0";
    // First run warms the buffer pools and checks the answer; second run
    // measures the warm virtual duration, so the crash below can be timed
    // to land mid-query deterministically.
    auto base = (*conn)->Query(q);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ(base->rows[0][0].int_value(), 30000);
    sim::Time t0 = sim_.now();
    ASSERT_TRUE((*conn)->Query(q).ok());
    sim::Time dur = sim_.now() - t0;
    ASSERT_GT(dur, 0);
    sim_.faults().ScheduleCrash(sim_.now() + dur / 2, "worker2",
                                50 * sim::kMillisecond);
    auto r = (*conn)->Query(q);
    ASSERT_FALSE(r.ok()) << "query must not return a partial answer";
    EXPECT_TRUE(r.status().error_class() == ErrorClass::kRetryableTransient ||
                r.status().error_class() == ErrorClass::kNodeDown)
        << r.status().ToString();
    // After the restart the same session recovers and the answer is intact.
    sim_.WaitFor(200 * sim::kMillisecond);
    auto healed = (*conn)->Query(q);
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    EXPECT_EQ(healed->rows[0][0].int_value(), 30000);
  });
  sim_.Run();
}

TEST_F(ChaosTest, StatFailuresViewExposesFailureCounters) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    int64_t k1 = 0, k2 = 0;
    SetupPairTable(**conn, &k1, &k2);
    sim_.faults().DropNextRoundTrips("worker1", 1);
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("SELECT v FROM t WHERE key = %lld",
                                      static_cast<long long>(k1)))
                    .ok());
    auto r = (*conn)->Query("SELECT * FROM citus_stat_failures");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 3u);  // coordinator + 2 workers
    bool saw_worker1 = false, saw_retry = false;
    for (const auto& row : r->rows) {
      if (row[0].ToText() == "worker1") {
        saw_worker1 = true;
        EXPECT_GE(row[1].int_value(), 1);  // faults_injected
        EXPECT_GE(row[2].int_value(), 1);  // connection_drops
      }
      if (row[0].ToText() == "coordinator") {
        saw_retry = row[5].int_value() >= 1;  // task_retries
      }
    }
    EXPECT_TRUE(saw_worker1);
    EXPECT_TRUE(saw_retry);
  });
  sim_.Run();
}

}  // namespace
}  // namespace citusx::citus
