// Citus MX tests (§3.10): metadata syncing to workers and any-node
// coordination — router reads/writes and multi-shard queries via workers
// match coordinator-originated results, worker-originated 2PC, stale-node
// rejection (never wrong answers), re-sync healing, the sync admin UDFs,
// and the citus_stat_metadata_sync view.
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "citus/rebalancer.h"
#include "common/str.h"
#include "sim/fault.h"

namespace citusx::citus {
namespace {

using engine::QueryResult;

class MxTest : public ::testing::Test {
 protected:
  void Deploy(const DeploymentOptions& options) {
    deploy_ = std::make_unique<Deployment>(&sim_, options);
  }

  void MakeDeployment(int workers) {
    DeploymentOptions options;
    options.num_workers = workers;
    Deploy(options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  QueryResult MustQuery(net::Connection& conn, const std::string& sql) {
    auto r = conn.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  // Placement worker of `key` in distributed table `table`.
  std::string WorkerOf(const std::string& table, int64_t key) {
    const CitusTable* ct = deploy_->metadata().Find(table);
    int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
    return ct->shards[static_cast<size_t>(idx)].placement;
  }

  // Smallest key >= `from` whose shard lives on `worker`.
  int64_t KeyOn(const std::string& table, const std::string& worker,
                int64_t from = 1) {
    int64_t key = from;
    while (WorkerOf(table, key) != worker) key++;
    return key;
  }

  CitusExtension* ExtOf(const std::string& name) {
    return deploy_->extension(deploy_->cluster().directory().Find(name));
  }

  size_t PreparedCount() {
    size_t n = 0;
    for (engine::Node* w : deploy_->workers()) {
      n += w->txns().PreparedGids().size();
    }
    return n;
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

// Router reads and writes through a worker return exactly what the
// coordinator returns.
TEST_F(MxTest, WorkerRoutedReadsAndWritesMatchCoordinator) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    for (int i = 0; i < 16; i++) {
      MustQuery(**cconn, StrFormat("INSERT INTO kv VALUES (%d, 'v%d')", i, i));
    }
    auto wconn = deploy_->Connect("worker2");
    ASSERT_TRUE(wconn.ok());
    for (int i = 0; i < 16; i++) {
      QueryResult via_worker =
          MustQuery(**wconn, StrFormat("SELECT v FROM kv WHERE key = %d", i));
      QueryResult via_coord =
          MustQuery(**cconn, StrFormat("SELECT v FROM kv WHERE key = %d", i));
      ASSERT_EQ(via_worker.rows.size(), 1u) << i;
      ASSERT_EQ(via_coord.rows.size(), 1u) << i;
      EXPECT_EQ(via_worker.rows[0][0].text_value(),
                via_coord.rows[0][0].text_value());
    }
    // Worker-routed writes are visible everywhere.
    MustQuery(**wconn, "UPDATE kv SET v = 'mx' WHERE key = 3");
    MustQuery(**wconn, "INSERT INTO kv VALUES (100, 'new')");
    EXPECT_EQ(MustQuery(**cconn, "SELECT v FROM kv WHERE key = 3")
                  .rows[0][0]
                  .text_value(),
              "mx");
    EXPECT_EQ(MustQuery(**cconn, "SELECT v FROM kv WHERE key = 100")
                  .rows[0][0]
                  .text_value(),
              "new");
    MustQuery(**wconn, "DELETE FROM kv WHERE key = 100");
    EXPECT_EQ(MustQuery(**cconn, "SELECT count(*) FROM kv WHERE key = 100")
                  .rows[0][0]
                  .int_value(),
              0);
  });
}

// Multi-shard scans, aggregates, and GROUP BY through a worker produce the
// same answers as through the coordinator.
TEST_F(MxTest, MultiShardSelectFromWorkerMatchesCoordinator) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn,
              "CREATE TABLE events (device bigint, kind text, value bigint)");
    MustQuery(**cconn, "SELECT create_distributed_table('events', 'device')");
    for (int i = 0; i < 60; i++) {
      MustQuery(**cconn,
                StrFormat("INSERT INTO events VALUES (%d, '%s', %d)", i % 6,
                          i % 2 == 0 ? "click" : "view", i));
    }
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    for (const char* q :
         {"SELECT count(*) FROM events", "SELECT sum(value) FROM events",
          "SELECT count(*) FROM events WHERE kind = 'click'"}) {
      QueryResult via_worker = MustQuery(**wconn, q);
      QueryResult via_coord = MustQuery(**cconn, q);
      ASSERT_EQ(via_worker.rows.size(), 1u) << q;
      EXPECT_EQ(via_worker.rows[0][0].int_value(),
                via_coord.rows[0][0].int_value())
          << q;
    }
    QueryResult grouped = MustQuery(
        **wconn,
        "SELECT device, count(*) FROM events GROUP BY device ORDER BY device");
    ASSERT_EQ(grouped.rows.size(), 6u);
    for (const auto& row : grouped.rows) EXPECT_EQ(row[1].int_value(), 10);
  });
}

// A worker can run a multi-node write transaction end to end: it drives the
// 2PC itself, and nothing stays prepared afterwards.
TEST_F(MxTest, WorkerOriginatedTwoPhaseCommit) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE t (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**cconn, "SELECT create_distributed_table('t', 'key')");
    int64_t k1 = KeyOn("t", "worker1");
    int64_t k2 = KeyOn("t", "worker2", k1 + 1);
    MustQuery(**cconn, StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                                 static_cast<long long>(k1),
                                 static_cast<long long>(k2)));
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    MustQuery(**wconn, "BEGIN");
    MustQuery(**wconn, StrFormat("UPDATE t SET v = 21 WHERE key = %lld",
                                 static_cast<long long>(k1)));
    MustQuery(**wconn, StrFormat("UPDATE t SET v = 21 WHERE key = %lld",
                                 static_cast<long long>(k2)));
    MustQuery(**wconn, "COMMIT");
    EXPECT_EQ(PreparedCount(), 0u);
    EXPECT_EQ(
        MustQuery(**cconn, "SELECT sum(v) FROM t").rows[0][0].int_value(), 42);
  });
}

// With metadata sync disabled nothing reaches the workers: a worker must
// refuse to coordinate (retryable stale-metadata error), never answer from
// its empty shell tables. A manual citus_sync_metadata() heals it.
TEST_F(MxTest, UnsyncedWorkerRefusesMxRoutingUntilManualSync) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.enable_metadata_sync = false;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**cconn, "INSERT INTO kv VALUES (1, 'one')");
    EXPECT_FALSE(ExtOf("worker1")->MxReady());
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    auto r = (*wconn)->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsStaleMetadataStatus(r.status())) << r.status().ToString();
    EXPECT_EQ(r.status().code(), StatusCode::kAborted);
    EXPECT_EQ(r.status().error_class(), ErrorClass::kRetryableTransient);
    EXPECT_GE(ExtOf("worker1")->metric_mx_rejections->value(), 1);
    // The rejection shows up in citus_stat_failures (last column).
    QueryResult failures =
        MustQuery(**cconn, "SELECT * FROM citus_stat_failures");
    bool saw = false;
    for (const auto& row : failures.rows) {
      if (row[0].ToText() == "worker1") {
        saw = true;
        EXPECT_GE(row[10].int_value(), 1);
      }
    }
    EXPECT_TRUE(saw);
    // Heal: one manual sync round from the coordinator.
    QueryResult synced = MustQuery(**cconn, "SELECT citus_sync_metadata()");
    EXPECT_EQ(synced.rows[0][0].int_value(), 2);
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    QueryResult ok = MustQuery(**wconn, "SELECT v FROM kv WHERE key = 1");
    ASSERT_EQ(ok.rows.size(), 1u);
    EXPECT_EQ(ok.rows[0][0].text_value(), "one");
  });
}

// start_metadata_sync_to_node() syncs exactly one node.
TEST_F(MxTest, StartMetadataSyncToNodeSyncsOneWorker) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.enable_metadata_sync = false;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**cconn, "INSERT INTO kv VALUES (1, 'one')");
    MustQuery(**cconn, "SELECT start_metadata_sync_to_node('worker1')");
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    EXPECT_FALSE(ExtOf("worker2")->MxReady());
    auto w1 = deploy_->Connect("worker1");
    ASSERT_TRUE(w1.ok());
    EXPECT_EQ(MustQuery(**w1, "SELECT v FROM kv WHERE key = 1")
                  .rows[0][0]
                  .text_value(),
              "one");
    auto w2 = deploy_->Connect("worker2");
    ASSERT_TRUE(w2.ok());
    auto r = (*w2)->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsStaleMetadataStatus(r.status())) << r.status().ToString();
  });
}

// Every authoritative DDL bumps the cluster version and the auto-sync
// brings all workers to the same version.
TEST_F(MxTest, DdlBumpsClusterVersionAndResyncsWorkers) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    uint64_t v0 = deploy_->metadata().cluster_version();
    MustQuery(**cconn, "CREATE INDEX kv_v ON kv (v)");
    uint64_t v1 = deploy_->metadata().cluster_version();
    EXPECT_GT(v1, v0);
    for (const char* w : {"worker1", "worker2"}) {
      EXPECT_EQ(ExtOf(w)->metadata().cluster_version(), v1) << w;
      EXPECT_TRUE(ExtOf(w)->MxReady()) << w;
    }
    // Same for TRUNCATE.
    MustQuery(**cconn, "TRUNCATE kv");
    uint64_t v2 = deploy_->metadata().cluster_version();
    EXPECT_GT(v2, v1);
    EXPECT_EQ(ExtOf("worker1")->metadata().cluster_version(), v2);
  });
}

// A worker that observes a newer cluster version on the wire than its own
// copy (its sync round failed) refuses to coordinate until re-synced.
TEST_F(MxTest, ObservedNewerVersionMarksWorkerStale) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**cconn, "INSERT INTO kv VALUES (1, 'one')");
    ASSERT_TRUE(ExtOf("worker1")->MxReady());
    // Fail every sync round to worker1 from here on: it stays at the old
    // version while the cluster moves ahead.
    CitusExtension* cext = ExtOf("coordinator");
    cext->metadata_sync_fault_hook = [](const std::string& target,
                                        MetadataSyncPoint point) {
      if (target == "worker1" && point == MetadataSyncPoint::kBeforeBegin) {
        return Status::Unavailable("injected sync failure");
      }
      return Status::OK();
    };
    MustQuery(**cconn, "CREATE INDEX kv_v ON kv (v)");
    // The failed round never reached worker1, so by its own lights it is
    // still synced (at the old version).
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    // Route a coordinator-planned statement through worker1: the stamped
    // version is newer than worker1's copy, raising its watermark.
    MustQuery(**cconn, "INSERT INTO kv VALUES (2, 'two')");
    MustQuery(**cconn, "SELECT count(*) FROM kv");
    EXPECT_GT(ExtOf("worker1")->metadata().known_cluster_version(),
              ExtOf("worker1")->metadata().cluster_version());
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    auto r = (*wconn)->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsStaleMetadataStatus(r.status())) << r.status().ToString();
    // Heal and verify the worker answers again.
    cext->metadata_sync_fault_hook = nullptr;
    MustQuery(**cconn, "SELECT citus_sync_metadata()");
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    EXPECT_EQ(MustQuery(**wconn, "SELECT v FROM kv WHERE key = 1")
                  .rows[0][0]
                  .text_value(),
              "one");
  });
}

// A shard move invalidates worker routing through the metadata sync: a
// worker keeps returning correct results after the placement changed.
TEST_F(MxTest, ShardMoveResyncsWorkerRouting) {
  DeploymentOptions options;
  options.num_workers = 2;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE t (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**cconn, "SELECT create_distributed_table('t', 'key')");
    for (int64_t i = 0; i < 50; i++) {
      MustQuery(**cconn, StrFormat("INSERT INTO t VALUES (%lld, %lld)",
                                   static_cast<long long>(i),
                                   static_cast<long long>(i)));
    }
    auto wconn = deploy_->Connect("worker2");
    ASSERT_TRUE(wconn.ok());
    int64_t k = KeyOn("t", "worker1");
    EXPECT_EQ(MustQuery(**wconn, StrFormat("SELECT v FROM t WHERE key = %lld",
                                           static_cast<long long>(k)))
                  .rows[0][0]
                  .int_value(),
              k);
    // Move k's shard group from worker1 to worker2.
    const CitusTable* ct = deploy_->metadata().Find("t");
    int idx = ct->ShardIndexForHash(sql::Datum::Int8(k).PartitionHash());
    uint64_t shard_id = ct->shards[static_cast<size_t>(idx)].shard_id;
    Rebalancer rebalancer(ExtOf("coordinator"));
    auto session = deploy_->coordinator()->OpenSession();
    ASSERT_TRUE(
        rebalancer.MoveShard(*session, shard_id, "worker1", "worker2").ok());
    EXPECT_EQ(WorkerOf("t", k), "worker2");
    // The sync that followed the move republished the placements: both the
    // worker route and the total stay correct.
    EXPECT_TRUE(ExtOf("worker2")->MxReady());
    EXPECT_EQ(MustQuery(**wconn, StrFormat("SELECT v FROM t WHERE key = %lld",
                                           static_cast<long long>(k)))
                  .rows[0][0]
                  .int_value(),
              k);
    EXPECT_EQ(MustQuery(**wconn, "SELECT count(*) FROM t")
                  .rows[0][0]
                  .int_value(),
              50);
  });
}

// A restart wipes the in-memory metadata state: the worker must refuse MX
// routing until the next sync round reaches it.
TEST_F(MxTest, RestartClearsSyncedStateUntilResync) {
  DeploymentOptions options;
  options.num_workers = 2;
  // Park the maintenance daemon so the stale window is observable.
  options.citus.deadlock_poll_interval = 600 * sim::kSecond;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**cconn, "INSERT INTO kv VALUES (1, 'one')");
    ASSERT_TRUE(ExtOf("worker1")->MxReady());
    sim_.faults().Crash("worker1");
    sim_.faults().Restart("worker1");
    EXPECT_FALSE(ExtOf("worker1")->MxReady());
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    auto r = (*wconn)->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsStaleMetadataStatus(r.status())) << r.status().ToString();
    // The authority notices the restart (epoch change) on its next round;
    // trigger it manually here.
    EXPECT_TRUE(ExtOf("coordinator")->AnyMetadataSyncPending());
    MustQuery(**cconn, "SELECT citus_sync_metadata()");
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    EXPECT_EQ(MustQuery(**wconn, "SELECT v FROM kv WHERE key = 1")
                  .rows[0][0]
                  .text_value(),
              "one");
  });
}

// citus_stat_metadata_sync: per-worker sync bookkeeping on the authority, a
// single self row on a worker.
TEST_F(MxTest, StatMetadataSyncViewExposesSyncState) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    QueryResult r = MustQuery(
        **cconn,
        "SELECT * FROM citus_stat_metadata_sync ORDER BY node_name");
    ASSERT_EQ(r.rows.size(), 3u);  // coordinator + 2 workers
    uint64_t version = deploy_->metadata().cluster_version();
    for (const auto& row : r.rows) {
      bool authority = row[0].ToText() == "coordinator";
      EXPECT_EQ(row[1].int_value(), authority ? 1 : 0);
      EXPECT_EQ(row[2].int_value(), 1);  // synced
      EXPECT_EQ(row[3].int_value(), static_cast<int64_t>(version));
      if (!authority) {
        EXPECT_GE(row[5].int_value(), 3);  // >= 3 round trips per sync
        EXPECT_GE(row[6].int_value(), 1);  // >= 1 successful sync
        EXPECT_GE(row[7].int_value(), row[6].int_value());  // attempts
      }
    }
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    QueryResult w = MustQuery(**wconn,
                              "SELECT * FROM citus_stat_metadata_sync");
    ASSERT_EQ(w.rows.size(), 1u);
    EXPECT_EQ(w.rows[0][0].ToText(), "worker1");
    EXPECT_EQ(w.rows[0][1].int_value(), 0);
    EXPECT_EQ(w.rows[0][2].int_value(), 1);
    EXPECT_EQ(w.rows[0][3].int_value(), static_cast<int64_t>(version));
  });
}

// The sync admin UDFs are authority-only, like the DDL UDFs.
TEST_F(MxTest, SyncAdminUdfsRequireCoordinator) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    auto r1 = (*wconn)->Query("SELECT citus_sync_metadata()");
    EXPECT_FALSE(r1.ok());
    auto r2 = (*wconn)->Query("SELECT start_metadata_sync_to_node('worker2')");
    EXPECT_FALSE(r2.ok());
  });
}

// DDL stays single-master: schema changes against distributed tables are
// refused on workers, while purely local worker tables are untouched.
TEST_F(MxTest, DdlOnDistributedTablesRefusedOnWorker) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    for (const char* ddl :
         {"CREATE INDEX kv_v ON kv (v)", "DROP TABLE kv", "TRUNCATE kv"}) {
      auto r = (*wconn)->Query(ddl);
      ASSERT_FALSE(r.ok()) << ddl;
      EXPECT_EQ(r.status().code(), StatusCode::kNotSupported) << ddl;
    }
    // Local (non-distributed) DDL on the worker still works.
    MustQuery(**wconn, "CREATE TABLE scratch (a bigint)");
    MustQuery(**wconn, "CREATE INDEX scratch_a ON scratch (a)");
    MustQuery(**wconn, "DROP TABLE scratch");
  });
}

// Adding a node mid-flight syncs it and extends reference-table placement;
// dropped tables disappear from worker copies on the next sync.
// Once a worker is synced, further metadata changes ship as one-round-trip
// deltas; a restarted worker (stale base) falls back to the full protocol
// and then resumes delta syncing.
TEST_F(MxTest, DeltaSyncShipsIncrementsInOneRoundTrip) {
  MakeDeployment(2);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    CitusExtension* coord = ExtOf("coordinator");
    const NodeSyncState& st = coord->sync_states().at("worker1");
    int64_t deltas0 = st.delta_syncs;
    int64_t rts0 = st.round_trips;
    // DDL on an already-synced cluster: the version bump syncs via delta.
    MustQuery(**cconn, "CREATE INDEX kv_v ON kv (v)");
    EXPECT_GT(st.delta_syncs, deltas0);
    EXPECT_EQ(st.round_trips, rts0 + 1);  // one RT, not three
    EXPECT_EQ(ExtOf("worker1")->metadata().cluster_version(),
              deploy_->metadata().cluster_version());
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    // A dropped table rides the delta's drop log.
    MustQuery(**cconn, "DROP TABLE kv");
    EXPECT_EQ(ExtOf("worker1")->metadata().Find("kv"), nullptr);
    // Restart invalidates the peer's epoch: the next sync must be a full
    // round (delta count unchanged), after which deltas resume.
    int64_t deltas1 = st.delta_syncs;
    sim_.faults().Crash("worker1");
    sim_.faults().Restart("worker1");
    MustQuery(**cconn, "CREATE TABLE kv2 (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv2', 'key')");
    EXPECT_TRUE(ExtOf("worker1")->MxReady());
    EXPECT_EQ(st.delta_syncs, deltas1);  // full round after the restart
    MustQuery(**cconn, "CREATE INDEX kv2_v ON kv2 (v)");
    EXPECT_GT(st.delta_syncs, deltas1);  // deltas resume
    // A non-forcing sweep (the eager post-DDL / maintenance-daemon path)
    // over an already-current peer must ship nothing: a sweep triggered by
    // one lagging node must not re-send the catalog to the other 127.
    int64_t rts2 = st.round_trips;
    int64_t attempts2 = st.attempts;
    auto swept = coord->SyncMetadataToWorkers();
    ASSERT_TRUE(swept.ok());
    EXPECT_EQ(st.round_trips, rts2);
    EXPECT_EQ(st.attempts, attempts2);
    // The explicit repair UDF forces a full re-ship.
    MustQuery(**cconn, "SELECT citus_sync_metadata()");
    EXPECT_GT(st.round_trips, rts2);
  });
}

TEST_F(MxTest, AddNodeAndDropTablePropagateThroughSync) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.spare_workers = 1;
  Deploy(options);
  RunSim([&] {
    auto cconn = deploy_->Connect();
    ASSERT_TRUE(cconn.ok());
    MustQuery(**cconn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**cconn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**cconn, "INSERT INTO kv VALUES (1, 'one')");
    MustQuery(**cconn, "SELECT citus_add_node('worker3')");
    EXPECT_TRUE(ExtOf("worker3")->MxReady());
    auto w3 = deploy_->Connect("worker3");
    ASSERT_TRUE(w3.ok());
    EXPECT_EQ(MustQuery(**w3, "SELECT v FROM kv WHERE key = 1")
                  .rows[0][0]
                  .text_value(),
              "one");
    // DROP on the coordinator reaches every copy.
    MustQuery(**cconn, "DROP TABLE kv");
    EXPECT_EQ(ExtOf("worker3")->metadata().Find("kv"), nullptr);
    EXPECT_EQ(ExtOf("worker1")->metadata().Find("kv"), nullptr);
    EXPECT_FALSE(ExtOf("worker1")->IsShellTable("kv"));
  });
}

}  // namespace
}  // namespace citusx::citus
