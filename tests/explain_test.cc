// Tests for EXPLAIN: local plan descriptions and distributed planner tiers.
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "common/str.h"

namespace citusx {
namespace {

std::string ExplainText(const engine::QueryResult& r) {
  std::string out;
  for (const auto& row : r.rows) {
    out += row[0].text_value();
    out += "\n";
  }
  return out;
}

class ExplainTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }
  // Shut the simulation down before the deployment is destroyed: backend
  // processes unwinding during Shutdown still release connection gates.
  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }
  sim::Simulation sim_;
  std::unique_ptr<citus::Deployment> deploy_;
};

TEST_F(ExplainTest, LocalPlans) {
  engine::Node node(&sim_, "pg", sim::DefaultCostModel());
  RunSim([&] {
    auto s = node.OpenSession();
    ASSERT_TRUE(s->Execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint, "
                           "tag text)")
                    .ok());
    ASSERT_TRUE(s->Execute("CREATE TABLE u (k bigint, w bigint)").ok());
    // Index scan is chosen for pk equality.
    auto idx = s->Execute("EXPLAIN SELECT v FROM t WHERE k = 5");
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    EXPECT_NE(ExplainText(*idx).find("Index Scan on t"), std::string::npos)
        << ExplainText(*idx);
    // Seq scan otherwise, with the filter shown.
    auto seq = s->Execute("EXPLAIN SELECT v FROM t WHERE v > 5");
    ASSERT_TRUE(seq.ok());
    EXPECT_NE(ExplainText(*seq).find("Seq Scan on t"), std::string::npos);
    EXPECT_NE(ExplainText(*seq).find("Filter"), std::string::npos);
    // Hash join + aggregate + sort + limit structure.
    auto join = s->Execute(
        "EXPLAIN SELECT t.tag, count(*) FROM t JOIN u ON t.k = u.k "
        "GROUP BY t.tag ORDER BY 2 DESC LIMIT 3");
    ASSERT_TRUE(join.ok());
    std::string text = ExplainText(*join);
    EXPECT_NE(text.find("Hash Inner Join"), std::string::npos) << text;
    EXPECT_NE(text.find("GroupAggregate"), std::string::npos) << text;
    EXPECT_NE(text.find("Sort"), std::string::npos) << text;
    EXPECT_NE(text.find("Limit 3"), std::string::npos) << text;
    // DML explain.
    auto upd = s->Execute("EXPLAIN UPDATE t SET v = 1 WHERE k = 2");
    ASSERT_TRUE(upd.ok());
    EXPECT_NE(ExplainText(*upd).find("Update on t"), std::string::npos);
  });
}

TEST_F(ExplainTest, DistributedTiers) {
  citus::DeploymentOptions options;
  options.num_workers = 2;
  deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  citus::Deployment& deploy = *deploy_;
  RunSim([&] {
    auto conn = deploy.Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE kv (key bigint PRIMARY KEY, v text)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('kv', 'key')").ok());
    // Fast path router.
    auto fast = (*conn)->Query("EXPLAIN SELECT v FROM kv WHERE key = 1");
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    std::string text = ExplainText(*fast);
    EXPECT_NE(text.find("Fast Path Router"), std::string::npos) << text;
    EXPECT_NE(text.find("kv_102"), std::string::npos) << text;  // shard name
    // Adaptive (pushdown) with task count = shard count.
    auto push = (*conn)->Query("EXPLAIN SELECT count(*) FROM kv");
    ASSERT_TRUE(push.ok());
    text = ExplainText(*push);
    EXPECT_NE(text.find("Citus Adaptive"), std::string::npos) << text;
    EXPECT_NE(text.find("Task Count: 32"), std::string::npos) << text;
    // Multi-shard DML.
    auto dml = (*conn)->Query("EXPLAIN UPDATE kv SET v = 'x'");
    ASSERT_TRUE(dml.ok());
    EXPECT_NE(ExplainText(*dml).find("Modify on kv"), std::string::npos);
    // EXPLAIN must not have executed the update.
    auto count = (*conn)->Query("SELECT count(*) FROM kv WHERE v = 'x'");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->rows[0][0].int_value(), 0);
  });
}

}  // namespace
}  // namespace citusx
