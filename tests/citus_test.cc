// Integration tests for the Citus extension: distributed tables, the four
// planner tiers, reference tables, 2PC, distributed deadlock detection,
// COPY, INSERT..SELECT, DDL propagation, and procedure delegation.
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "citus/rebalancer.h"
#include "citus/planner.h"
#include "common/str.h"

namespace citusx::citus {
namespace {

using engine::QueryResult;

class CitusTest : public ::testing::Test {
 protected:
  void MakeDeployment(int workers) {
    DeploymentOptions options;
    options.num_workers = workers;
    deploy_ = std::make_unique<Deployment>(&sim_, options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  QueryResult MustQuery(net::Connection& conn, const std::string& sql) {
    auto r = conn.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

TEST_F(CitusTest, CreateDistributedTableMakesShards) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE items (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('items', 'key')");
    const CitusTable* t = deploy_->metadata().Find("items");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->shards.size(), 32u);
    EXPECT_EQ(t->dist_col_index, 0);
    // Shards placed round robin over 4 workers.
    std::map<std::string, int> per_worker;
    for (const auto& s : t->shards) per_worker[s.placement]++;
    EXPECT_EQ(per_worker.size(), 4u);
    for (const auto& [w, n] : per_worker) EXPECT_EQ(n, 8);
    // Shard tables exist on workers.
    int found = 0;
    for (engine::Node* w : deploy_->workers()) {
      for (const auto& s : t->shards) {
        if (w->catalog().Find(t->ShardName(s.shard_id)) != nullptr) found++;
      }
    }
    EXPECT_EQ(found, 32);
  });
}

TEST_F(CitusTest, FastPathRoutingReadsAndWrites) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    int64_t fast_before = DistributedPlanner::fast_path_count;
    for (int i = 0; i < 20; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO kv VALUES (%d, 'v%d')", i, i));
    }
    for (int i = 0; i < 20; i++) {
      QueryResult r =
          MustQuery(**conn, StrFormat("SELECT v FROM kv WHERE key = %d", i));
      ASSERT_EQ(r.rows.size(), 1u) << i;
      EXPECT_EQ(r.rows[0][0].text_value(), StrFormat("v%d", i));
    }
    MustQuery(**conn, "UPDATE kv SET v = 'updated' WHERE key = 7");
    QueryResult r = MustQuery(**conn, "SELECT v FROM kv WHERE key = 7");
    EXPECT_EQ(r.rows[0][0].text_value(), "updated");
    MustQuery(**conn, "DELETE FROM kv WHERE key = 7");
    r = MustQuery(**conn, "SELECT count(*) FROM kv WHERE key = 7");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    EXPECT_GT(DistributedPlanner::fast_path_count, fast_before + 30);
    // Data is actually spread across workers.
    int64_t on_workers = 0;
    const CitusTable* t = deploy_->metadata().Find("kv");
    for (engine::Node* w : deploy_->workers()) {
      for (const auto& s : t->shards) {
        engine::TableInfo* info = w->catalog().Find(t->ShardName(s.shard_id));
        if (info != nullptr && info->heap != nullptr) {
          on_workers += info->heap->num_rows() > 0 ? 1 : 0;
        }
      }
    }
    EXPECT_GT(on_workers, 5);  // many shards have data
  });
}

TEST_F(CitusTest, PushdownAggregation) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn,
              "CREATE TABLE events (device bigint, kind text, value double precision)");
    MustQuery(**conn, "SELECT create_distributed_table('events', 'device')");
    for (int i = 0; i < 100; i++) {
      MustQuery(**conn,
                StrFormat("INSERT INTO events VALUES (%d, '%s', %d.5)", i % 10,
                          i % 2 == 0 ? "click" : "view", i));
    }
    int64_t pushdown_before = DistributedPlanner::pushdown_count;
    // Global aggregate without grouping: partial agg + merge.
    QueryResult r = MustQuery(**conn, "SELECT count(*), avg(value) FROM events");
    EXPECT_EQ(r.rows[0][0].int_value(), 100);
    EXPECT_NEAR(r.rows[0][1].float_value(), 50.0, 0.01);
    // Group by non-dist column: merge step re-aggregates.
    r = MustQuery(**conn,
                  "SELECT kind, count(*), min(value), max(value) FROM events "
                  "GROUP BY kind ORDER BY kind");
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0].text_value(), "click");
    EXPECT_EQ(r.rows[0][1].int_value(), 50);
    EXPECT_EQ(r.rows[0][2].float_value(), 0.5);
    EXPECT_EQ(r.rows[0][3].float_value(), 98.5);
    // Group by dist column: full pushdown (no re-aggregation).
    r = MustQuery(**conn,
                  "SELECT device, count(*) FROM events GROUP BY device "
                  "ORDER BY device");
    ASSERT_EQ(r.rows.size(), 10u);
    for (const auto& row : r.rows) EXPECT_EQ(row[1].int_value(), 10);
    // Plain multi-shard select with order/limit.
    r = MustQuery(**conn,
                  "SELECT value FROM events ORDER BY value DESC LIMIT 3");
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0][0].float_value(), 99.5);
    EXPECT_EQ(r.rows[2][0].float_value(), 97.5);
    EXPECT_GT(DistributedPlanner::pushdown_count, pushdown_before + 3);
  });
}

TEST_F(CitusTest, VeniceDbNestedSubqueryPushdown) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn,
              "CREATE TABLE reports (deviceid bigint, metric double precision)");
    MustQuery(**conn, "SELECT create_distributed_table('reports', 'deviceid')");
    for (int d = 0; d < 20; d++) {
      for (int j = 0; j < 5; j++) {
        MustQuery(**conn, StrFormat("INSERT INTO reports VALUES (%d, %d)", d,
                                    d * 10 + j));
      }
    }
    // The §5 RQV query shape: inner GROUP BY deviceid pushes down whole.
    QueryResult r = MustQuery(
        **conn,
        "SELECT avg(device_avg) FROM (SELECT deviceid, avg(metric) AS "
        "device_avg FROM reports GROUP BY deviceid) AS subq");
    ASSERT_EQ(r.rows.size(), 1u);
    // device d average = 10d + 2; mean over d=0..19 = 10*9.5 + 2 = 97.
    EXPECT_NEAR(r.rows[0][0].float_value(), 97.0, 0.01);
  });
}

TEST_F(CitusTest, ColocatedJoinAndReferenceJoin) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE orders (tenant bigint, id bigint, amount bigint)");
    MustQuery(**conn, "CREATE TABLE lines (tenant bigint, order_id bigint, qty bigint)");
    MustQuery(**conn, "CREATE TABLE currencies (code text, rate double precision)");
    MustQuery(**conn, "SELECT create_distributed_table('orders', 'tenant')");
    MustQuery(**conn,
              "SELECT create_distributed_table('lines', 'tenant', "
              "colocate_with := 'orders')");
    MustQuery(**conn, "SELECT create_reference_table('currencies')");
    const CitusTable* o = deploy_->metadata().Find("orders");
    const CitusTable* l = deploy_->metadata().Find("lines");
    EXPECT_EQ(o->colocation_id, l->colocation_id);
    MustQuery(**conn, "INSERT INTO currencies VALUES ('usd', 1.0), ('eur', 1.1)");
    for (int t = 0; t < 8; t++) {
      MustQuery(**conn,
                StrFormat("INSERT INTO orders VALUES (%d, %d, %d)", t, t * 100, t));
      MustQuery(**conn,
                StrFormat("INSERT INTO lines VALUES (%d, %d, 2)", t, t * 100));
    }
    // Co-located distributed join (parallel, multi-shard).
    QueryResult r = MustQuery(
        **conn,
        "SELECT count(*) FROM orders JOIN lines ON orders.tenant = "
        "lines.tenant AND orders.id = lines.order_id");
    EXPECT_EQ(r.rows[0][0].int_value(), 8);
    // Join with a reference table replica on each worker.
    r = MustQuery(**conn,
                  "SELECT count(*) FROM orders, currencies WHERE "
                  "currencies.code = 'usd'");
    EXPECT_EQ(r.rows[0][0].int_value(), 8);
    // Router join: single tenant.
    r = MustQuery(**conn,
                  "SELECT orders.id, lines.qty FROM orders JOIN lines ON "
                  "orders.tenant = lines.tenant WHERE orders.tenant = 3");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].int_value(), 300);
  });
}

TEST_F(CitusTest, ReferenceTableReplicationAndWrites) {
  MakeDeployment(3);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE dims (id bigint PRIMARY KEY, name text)");
    MustQuery(**conn, "SELECT create_reference_table('dims')");
    MustQuery(**conn, "INSERT INTO dims VALUES (1, 'one'), (2, 'two')");
    const CitusTable* t = deploy_->metadata().Find("dims");
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->is_reference);
    // Replicated to all nodes, including the coordinator (writes are 2PC).
    EXPECT_EQ(t->replica_nodes.size(), 4u);
    std::string shard = t->ShardName(t->shards[0].shard_id);
    for (engine::Node* w : deploy_->workers()) {
      engine::TableInfo* info = w->catalog().Find(shard);
      ASSERT_NE(info, nullptr) << w->name();
      EXPECT_EQ(info->heap->num_rows(), 2u) << w->name();
    }
    EXPECT_NE(deploy_->coordinator()->catalog().Find(shard), nullptr);
    // Updates hit every replica.
    MustQuery(**conn, "UPDATE dims SET name = 'uno' WHERE id = 1");
    QueryResult r = MustQuery(**conn, "SELECT name FROM dims WHERE id = 1");
    EXPECT_EQ(r.rows[0][0].text_value(), "uno");
    // 2PC was used for the multi-node write.
    CitusExtension* ext = deploy_->extension(deploy_->coordinator());
    EXPECT_GT(ext->two_phase_commits, 0);
  });
}

TEST_F(CitusTest, MultiStatementTransactionSingleNodeDelegation) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE acc (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('acc', 'key')");
    // Pick two keys that land on different workers.
    const CitusTable* ct = deploy_->metadata().Find("acc");
    auto worker_of = [&](int64_t key) {
      int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
      return ct->shards[static_cast<size_t>(idx)].placement;
    };
    int64_t k1 = 1, k2 = 2;
    while (worker_of(k2) == worker_of(k1)) k2++;
    MustQuery(**conn, StrFormat("INSERT INTO acc VALUES (%lld, 100), (%lld, 200)",
                                static_cast<long long>(k1),
                                static_cast<long long>(k2)));
    CitusExtension* ext = deploy_->extension(deploy_->coordinator());
    int64_t tpc_before = ext->two_phase_commits;
    int64_t single_before = ext->single_node_commits;
    // Same key twice: single worker transaction, no 2PC.
    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, StrFormat("UPDATE acc SET v = v - 10 WHERE key = %lld",
                                static_cast<long long>(k1)));
    MustQuery(**conn, StrFormat("UPDATE acc SET v = v + 10 WHERE key = %lld",
                                static_cast<long long>(k1)));
    MustQuery(**conn, "COMMIT");
    EXPECT_EQ(ext->two_phase_commits, tpc_before);
    EXPECT_EQ(ext->single_node_commits, single_before + 1);
    // Different keys on different nodes: 2PC.
    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, StrFormat("UPDATE acc SET v = v - 10 WHERE key = %lld",
                                static_cast<long long>(k1)));
    MustQuery(**conn, StrFormat("UPDATE acc SET v = v + 10 WHERE key = %lld",
                                static_cast<long long>(k2)));
    MustQuery(**conn, "COMMIT");
    EXPECT_GE(ext->two_phase_commits, tpc_before + 1);
    QueryResult r = MustQuery(**conn, "SELECT sum(v) FROM acc");
    EXPECT_EQ(r.rows[0][0].int_value(), 300);
    // Rollback undoes on all nodes.
    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, StrFormat("UPDATE acc SET v = 0 WHERE key = %lld",
                                static_cast<long long>(k1)));
    MustQuery(**conn, StrFormat("UPDATE acc SET v = 0 WHERE key = %lld",
                                static_cast<long long>(k2)));
    MustQuery(**conn, "ROLLBACK");
    r = MustQuery(**conn, "SELECT sum(v) FROM acc");
    EXPECT_EQ(r.rows[0][0].int_value(), 300);
  });
}

TEST_F(CitusTest, TwoPhaseCommitRecoveryAfterWorkerCrash) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE t (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    // Find two keys on different workers.
    const CitusTable* ct = deploy_->metadata().Find("t");
    auto worker_of = [&](int64_t key) {
      int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
      return ct->shards[static_cast<size_t>(idx)].placement;
    };
    int64_t key1 = 1;
    while (worker_of(key1) != "worker1") key1++;
    // A second key on the same shard as key1 (so both prepared transactions
    // live on worker1 without touching the same row).
    int64_t key1b = key1 + 1;
    while (worker_of(key1b) != worker_of(key1) ||
           ct->ShardIndexForHash(sql::Datum::Int8(key1b).PartitionHash()) !=
               ct->ShardIndexForHash(sql::Datum::Int8(key1).PartitionHash())) {
      key1b++;
    }
    MustQuery(**conn, StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                                static_cast<long long>(key1),
                                static_cast<long long>(key1b)));
    // Simulate a coordinator-side failure *between* prepare and commit
    // prepared: run a 2PC, then manually re-prepare state on one worker by
    // crashing it right after commit... Instead we drive the recovery path
    // directly: create a prepared transaction on a worker with a matching
    // commit record, and one without.
    engine::Node* w1 = deploy_->cluster().directory().Find(worker_of(key1));
    auto ws = w1->OpenSession();
    std::string key1_str = std::to_string(key1);
    std::string shard1 =
        ct->ShardName(ct->shards[static_cast<size_t>(
            ct->ShardIndexForHash(sql::Datum::Int8(key1).PartitionHash()))].shard_id);
    ASSERT_TRUE(ws->Execute("BEGIN").ok());
    ASSERT_TRUE(
        ws->Execute("UPDATE " + shard1 + " SET v = 42 WHERE key = " + key1_str)
            .ok());
    ASSERT_TRUE(
        ws->Execute("PREPARE TRANSACTION 'citusx_coordinator_999_0'").ok());
    ASSERT_TRUE(ws->Execute("BEGIN").ok());
    ASSERT_TRUE(ws->Execute("UPDATE " + shard1 + " SET v = 77 WHERE key = " +
                            std::to_string(key1b))
                    .ok());
    ASSERT_TRUE(
        ws->Execute("PREPARE TRANSACTION 'citusx_coordinator_998_0'").ok());
    // Commit record exists only for txn 999.
    auto coord_session = deploy_->coordinator()->OpenSession();
    ASSERT_TRUE(coord_session
                    ->Execute("INSERT INTO pg_dist_transaction VALUES "
                              "('citusx_coordinator_999_0')")
                    .ok());
    CitusExtension* ext = deploy_->extension(deploy_->coordinator());
    auto recovered = ext->RecoverTwoPhaseCommits(*coord_session);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(*recovered, 2);  // one committed, one rolled back
    EXPECT_TRUE(w1->txns().PreparedGids().empty());
    QueryResult r = MustQuery(
        **conn, "SELECT v FROM t WHERE key = " + key1_str);
    EXPECT_EQ(r.rows[0][0].int_value(), 42);  // 999 committed
    r = MustQuery(**conn,
                  "SELECT v FROM t WHERE key = " + std::to_string(key1b));
    EXPECT_EQ(r.rows[0][0].int_value(), 0);  // 998 rolled back
  });
}

TEST_F(CitusTest, DistributedDeadlockDetected) {
  MakeDeployment(2);
  auto conn1_holder = std::make_shared<std::unique_ptr<net::Connection>>();
  auto conn2_holder = std::make_shared<std::unique_ptr<net::Connection>>();
  int deadlocks = 0, commits = 0;
  int64_t deadlock_key1 = 0, deadlock_key2 = 0;
  sim_.Spawn("setup", [&] {
    auto c = deploy_->Connect();
    ASSERT_TRUE(c.ok());
    auto conn = std::move(*c);
    MustQuery(*conn, "CREATE TABLE t (key bigint PRIMARY KEY, v bigint)");
    MustQuery(*conn, "SELECT create_distributed_table('t', 'key')");
    const CitusTable* ct = deploy_->metadata().Find("t");
    auto worker_of = [&](int64_t key) {
      int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
      return ct->shards[static_cast<size_t>(idx)].placement;
    };
    // Cross-node deadlock requires the two keys on different workers.
    deadlock_key1 = 1;
    while (worker_of(deadlock_key1) != "worker1") deadlock_key1++;
    deadlock_key2 = deadlock_key1 + 1;
    while (worker_of(deadlock_key2) != "worker2") deadlock_key2++;
    MustQuery(*conn, StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                               static_cast<long long>(deadlock_key1),
                               static_cast<long long>(deadlock_key2)));
    *conn1_holder = std::move(*deploy_->Connect());
    *conn2_holder = std::move(*deploy_->Connect());
  });
  sim_.Run();
  auto txn = [&](net::Connection& conn, int first, int second, int* out) {
    auto r = conn.Query("BEGIN");
    ASSERT_TRUE(r.ok());
    r = conn.Query(StrFormat("UPDATE t SET v = v + 1 WHERE key = %d", first));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sim_.WaitFor(100 * sim::kMillisecond);
    r = conn.Query(StrFormat("UPDATE t SET v = v + 1 WHERE key = %d", second));
    if (r.ok()) {
      ASSERT_TRUE(conn.Query("COMMIT").ok());
      *out = 1;
    } else {
      EXPECT_TRUE(r.status().IsDeadlock() || r.status().IsAborted())
          << r.status().ToString();
      auto rb = conn.Query("ROLLBACK");
      *out = 2;
    }
  };
  int out1 = 0, out2 = 0;
  sim_.Spawn("t1", [&] {
    txn(**conn1_holder, static_cast<int>(deadlock_key1),
        static_cast<int>(deadlock_key2), &out1);
  });
  sim_.Spawn("t2", [&] {
    txn(**conn2_holder, static_cast<int>(deadlock_key2),
        static_cast<int>(deadlock_key1), &out2);
  });
  sim_.Run();
  commits = (out1 == 1 ? 1 : 0) + (out2 == 1 ? 1 : 0);
  deadlocks = (out1 == 2 ? 1 : 0) + (out2 == 2 ? 1 : 0);
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(deadlocks, 1);
  CitusExtension* ext = deploy_->extension(deploy_->coordinator());
  EXPECT_GE(ext->deadlocks_detected, 1);
}

TEST_F(CitusTest, DistributedCopyPartitionsRows) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE ev (id bigint, data text)");
    MustQuery(**conn, "SELECT create_distributed_table('ev', 'id')");
    std::vector<std::vector<std::string>> rows;
    for (int i = 0; i < 500; i++) {
      rows.push_back({std::to_string(i), "payload" + std::to_string(i)});
    }
    auto r = (*conn)->CopyIn("ev", {}, rows);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows_affected, 500);
    QueryResult count = MustQuery(**conn, "SELECT count(*) FROM ev");
    EXPECT_EQ(count.rows[0][0].int_value(), 500);
    // Every worker got some rows.
    const CitusTable* t = deploy_->metadata().Find("ev");
    std::map<std::string, int64_t> per_worker;
    for (const auto& s : t->shards) {
      engine::Node* w = deploy_->cluster().directory().Find(s.placement);
      engine::TableInfo* info = w->catalog().Find(t->ShardName(s.shard_id));
      if (info != nullptr) per_worker[s.placement] += info->heap->num_rows();
    }
    EXPECT_EQ(per_worker.size(), 4u);
    for (const auto& [w, n] : per_worker) EXPECT_GT(n, 50);
  });
}

TEST_F(CitusTest, ColocatedInsertSelectRollup) {
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE raw (device bigint, metric bigint)");
    MustQuery(**conn, "CREATE TABLE rollup (device bigint, total bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('raw', 'device')");
    MustQuery(**conn,
              "SELECT create_distributed_table('rollup', 'device', "
              "colocate_with := 'raw')");
    for (int i = 0; i < 40; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO raw VALUES (%d, %d)", i % 8, i));
    }
    int64_t pushdown_before = DistributedPlanner::pushdown_count;
    // Co-located INSERT..SELECT: per-shard, no coordinator merge.
    MustQuery(**conn,
              "INSERT INTO rollup SELECT device, sum(metric) FROM raw "
              "GROUP BY device");
    EXPECT_GT(DistributedPlanner::pushdown_count, pushdown_before);
    QueryResult r = MustQuery(
        **conn, "SELECT sum(total) FROM rollup");
    EXPECT_EQ(r.rows[0][0].int_value(), 40 * 39 / 2);
    QueryResult n = MustQuery(**conn, "SELECT count(*) FROM rollup");
    EXPECT_EQ(n.rows[0][0].int_value(), 8);
  });
}

TEST_F(CitusTest, InsertSelectViaCoordinatorWhenMergeNeeded) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE src (a bigint, b bigint)");
    MustQuery(**conn, "CREATE TABLE dst (b bigint, n bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('src', 'a')");
    MustQuery(**conn, "SELECT create_distributed_table('dst', 'b')");
    for (int i = 0; i < 30; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO src VALUES (%d, %d)", i, i % 3));
    }
    // Grouping by a non-dist column: needs merge, then re-COPY (strategy 3).
    MustQuery(**conn,
              "INSERT INTO dst SELECT b, count(*) FROM src GROUP BY b");
    QueryResult r = MustQuery(**conn, "SELECT count(*), sum(n) FROM dst");
    EXPECT_EQ(r.rows[0][0].int_value(), 3);
    EXPECT_EQ(r.rows[0][1].int_value(), 30);
  });
}

TEST_F(CitusTest, DistributedDdlPropagatesIndexes) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE t (key bigint, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    MustQuery(**conn, "CREATE INDEX t_v ON t (v)");
    const CitusTable* ct = deploy_->metadata().Find("t");
    EXPECT_EQ(ct->post_ddl.size(), 1u);
    // Index exists on every shard.
    int with_index = 0;
    for (const auto& s : ct->shards) {
      engine::Node* w = deploy_->cluster().directory().Find(s.placement);
      engine::TableInfo* info = w->catalog().Find(ct->ShardName(s.shard_id));
      ASSERT_NE(info, nullptr);
      for (const auto& idx : info->indexes) {
        if (idx->name.rfind("t_v", 0) == 0) with_index++;
      }
    }
    EXPECT_EQ(with_index, 32);
    // TRUNCATE propagates.
    MustQuery(**conn, "INSERT INTO t VALUES (1, 'x')");
    MustQuery(**conn, "TRUNCATE t");
    QueryResult r = MustQuery(**conn, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    // DROP removes shards and metadata.
    MustQuery(**conn, "DROP TABLE t");
    EXPECT_EQ(deploy_->metadata().Find("t"), nullptr);
    auto gone = (*conn)->Query("SELECT count(*) FROM t");
    EXPECT_FALSE(gone.ok());
  });
}

TEST_F(CitusTest, JoinOrderPlannerRepartitionJoin) {
  MakeDeployment(3);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE big (a bigint, bkey bigint)");
    MustQuery(**conn, "CREATE TABLE other (b bigint, val bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('big', 'a')");
    MustQuery(**conn, "SELECT create_distributed_table('other', 'b')");
    // Join big.bkey = other.b: non-co-located (different dist columns).
    for (int i = 0; i < 50; i++) {
      MustQuery(**conn,
                StrFormat("INSERT INTO big VALUES (%d, %d)", i, i % 10));
      MustQuery(**conn,
                StrFormat("INSERT INTO other VALUES (%d, %d)", i, i * 2));
    }
    int64_t join_order_before = DistributedPlanner::join_order_count;
    QueryResult r = MustQuery(
        **conn,
        "SELECT count(*), sum(other.val) FROM big JOIN other ON big.bkey = "
        "other.b");
    EXPECT_EQ(r.rows[0][0].int_value(), 50);
    // each big row joins other row with b = bkey (val = 2*bkey).
    int64_t expected = 0;
    for (int i = 0; i < 50; i++) expected += 2 * (i % 10);
    EXPECT_EQ(r.rows[0][1].int_value(), expected);
    EXPECT_GT(DistributedPlanner::join_order_count, join_order_before);
  });
}

TEST_F(CitusTest, ShardRebalancerMovesShards) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE t (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    for (int i = 0; i < 100; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO t VALUES (%d, 'v%d')", i, i));
    }
    // Simulate cluster growth: a third worker joins.
    // (Workers are fixed in this deployment; instead, move everything to
    // worker1 and rebalance back.)
    CitusTable* ct = deploy_->metadata().Find("t");
    Rebalancer rebalancer(deploy_->extension(deploy_->coordinator()));
    auto session = deploy_->coordinator()->OpenSession();
    // Force imbalance: move all worker2 shards to worker1.
    std::vector<uint64_t> to_move;
    for (const auto& s : ct->shards) {
      if (s.placement == "worker2") to_move.push_back(s.shard_id);
    }
    for (uint64_t sid : to_move) {
      ASSERT_TRUE(
          rebalancer.MoveShard(*session, sid, "worker2", "worker1").ok());
    }
    std::map<std::string, int> counts;
    for (const auto& s : ct->shards) counts[s.placement]++;
    EXPECT_EQ(counts["worker1"], 32);
    // Data still all reachable.
    QueryResult r = MustQuery(**conn, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 100);
    // Rebalance evens the distribution again.
    auto moves = rebalancer.Rebalance(*session, RebalanceStrategy::kByShardCount);
    ASSERT_TRUE(moves.ok()) << moves.status().ToString();
    EXPECT_GE(*moves, 15);
    counts.clear();
    for (const auto& s : ct->shards) counts[s.placement]++;
    EXPECT_EQ(counts["worker1"], 16);
    EXPECT_EQ(counts["worker2"], 16);
    r = MustQuery(**conn, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 100);
    // Point queries still route correctly after the moves.
    r = MustQuery(**conn, "SELECT v FROM t WHERE key = 42");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].text_value(), "v42");
  });
}

TEST_F(CitusTest, ProcedureDelegationRunsOnWorker) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE acct (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('acct', 'key')");
    MustQuery(**conn, "INSERT INTO acct VALUES (5, 100)");
    // Register the procedure on every node (workloads do the same).
    for (size_t i = 0; i < deploy_->cluster().num_nodes(); i++) {
      deploy_->cluster().node(i)->RegisterProcedure(
          "add_balance",
          [](engine::Session& s,
             const std::vector<sql::Datum>& args) -> Result<engine::QueryResult> {
            return s.Execute(
                StrFormat("UPDATE acct SET v = v + %lld WHERE key = %lld",
                          static_cast<long long>(args[1].AsInt64()),
                          static_cast<long long>(args[0].AsInt64())));
          });
    }
    MustQuery(**conn,
              "SELECT create_distributed_procedure('add_balance', 0, 'acct')");
    MustQuery(**conn, "CALL add_balance(5, 25)");
    QueryResult r = MustQuery(**conn, "SELECT v FROM acct WHERE key = 5");
    EXPECT_EQ(r.rows[0][0].int_value(), 125);
  });
}

TEST_F(CitusTest, WorkerActsAsCoordinator) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'one'), (2, 'two')");
    // Connect directly to a worker: metadata is synced, so it can plan.
    auto wconn = deploy_->Connect("worker1");
    ASSERT_TRUE(wconn.ok());
    QueryResult r = MustQuery(**wconn, "SELECT v FROM kv WHERE key = 1");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].text_value(), "one");
    MustQuery(**wconn, "UPDATE kv SET v = 'ONE' WHERE key = 1");
    r = MustQuery(**conn, "SELECT v FROM kv WHERE key = 1");
    EXPECT_EQ(r.rows[0][0].text_value(), "ONE");
    // But DDL via a worker is rejected.
    MustQuery(**wconn, "CREATE TABLE other (a bigint)");
    auto ddl = (*wconn)->Query("SELECT create_distributed_table('other', 'a')");
    EXPECT_FALSE(ddl.ok());
  });
}

TEST_F(CitusTest, SnapshotIsolationAnomalyDocumented) {
  // §3.7.4: Citus does not provide distributed snapshot isolation; a
  // concurrent multi-node read may see a multi-node transaction half
  // applied. This test demonstrates (and pins down) that behaviour.
  MakeDeployment(2);
  auto writer_conn = std::make_shared<std::unique_ptr<net::Connection>>();
  auto reader_conn = std::make_shared<std::unique_ptr<net::Connection>>();
  int64_t half_sum = -1;
  sim_.Spawn("setup", [&] {
    auto c = deploy_->Connect();
    auto conn = std::move(*c);
    MustQuery(*conn, "CREATE TABLE pairs (key bigint PRIMARY KEY, v bigint)");
    MustQuery(*conn, "SELECT create_distributed_table('pairs', 'key')");
    MustQuery(*conn, "INSERT INTO pairs VALUES (1, 50), (2, 50)");
    *writer_conn = std::move(*deploy_->Connect());
    *reader_conn = std::move(*deploy_->Connect());
  });
  sim_.Run();
  // Writer: move 10 from key 1 to key 2 in a 2PC transaction; artificially
  // slow so the reader lands between the two COMMIT PREPAREDs.
  sim_.Spawn("writer", [&] {
    net::Connection& c = **writer_conn;
    ASSERT_TRUE(c.Query("BEGIN").ok());
    ASSERT_TRUE(c.Query("UPDATE pairs SET v = v - 10 WHERE key = 1").ok());
    ASSERT_TRUE(c.Query("UPDATE pairs SET v = v + 10 WHERE key = 2").ok());
    ASSERT_TRUE(c.Query("COMMIT").ok());
  });
  sim_.Spawn("reader", [&] {
    // Poll during the commit window; record any half-applied sum.
    for (int i = 0; i < 200; i++) {
      auto r = (*reader_conn)->Query("SELECT sum(v) FROM pairs");
      if (r.ok() && !r->rows.empty() && !r->rows[0][0].is_null()) {
        int64_t sum = r->rows[0][0].int_value();
        if (sum != 100) half_sum = sum;
      }
      sim_.WaitFor(100 * sim::kMicrosecond);
    }
  });
  sim_.Run();
  // The anomaly is timing dependent but this schedule reliably exposes it;
  // what must ALWAYS hold is that the final state is consistent.
  sim_.Spawn("check", [&] {
    auto r = (*reader_conn)->Query("SELECT sum(v) FROM pairs");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), 100);
  });
  sim_.Run();
  // Report whether the anomaly was observed (not asserted: schedules vary).
  if (half_sum != -1) {
    EXPECT_NE(half_sum, 100);
  }
}

TEST_F(CitusTest, Citus0Plus1SingleNodeCluster) {
  MakeDeployment(0);  // coordinator is the only worker
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE t (key bigint, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    for (int i = 0; i < 50; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i));
    }
    QueryResult r = MustQuery(**conn, "SELECT count(*), sum(v) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 50);
    EXPECT_EQ(r.rows[0][1].int_value(), 49 * 50 / 2);
    r = MustQuery(**conn, "SELECT v FROM t WHERE key = 30");
    EXPECT_EQ(r.rows[0][0].int_value(), 30);
  });
}

TEST_F(CitusTest, AddNodeAndRebalanceGrowsCluster) {
  // §3.4: grow the cluster, then rebalance onto the new node.
  citus::DeploymentOptions options;
  options.num_workers = 2;
  options.spare_workers = 1;
  deploy_ = std::make_unique<Deployment>(&sim_, options);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE t (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "CREATE TABLE ref (id bigint, name text)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    MustQuery(**conn, "SELECT create_reference_table('ref')");
    MustQuery(**conn, "INSERT INTO ref VALUES (1, 'one')");
    for (int i = 0; i < 60; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO t VALUES (%d, 'v%d')", i, i));
    }
    EXPECT_EQ(deploy_->metadata().workers.size(), 2u);
    MustQuery(**conn, "SELECT citus_add_node('worker3')");
    EXPECT_EQ(deploy_->metadata().workers.size(), 3u);
    // Reference table now has a replica on worker3 with the data.
    const CitusTable* ref = deploy_->metadata().Find("ref");
    bool has_w3 = false;
    for (const auto& n : ref->replica_nodes) has_w3 |= n == "worker3";
    EXPECT_TRUE(has_w3);
    engine::Node* w3 = deploy_->cluster().directory().Find("worker3");
    engine::TableInfo* replica =
        w3->catalog().Find(ref->ShardName(ref->shards[0].shard_id));
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->heap->num_rows(), 1u);
    // Rebalance moves shards onto the new node.
    Rebalancer rebalancer(deploy_->extension(deploy_->coordinator()));
    auto session = deploy_->coordinator()->OpenSession();
    auto moves = rebalancer.Rebalance(*session,
                                      RebalanceStrategy::kByShardCount);
    ASSERT_TRUE(moves.ok()) << moves.status().ToString();
    EXPECT_GT(*moves, 5);
    std::map<std::string, int> counts;
    const CitusTable* ct = deploy_->metadata().Find("t");
    for (const auto& s : ct->shards) counts[s.placement]++;
    EXPECT_GT(counts["worker3"], 8);
    // Everything still reachable, reads route correctly.
    QueryResult r = MustQuery(**conn, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 60);
    r = MustQuery(**conn,
                  "SELECT t.v FROM t, ref WHERE t.key = 42 AND ref.id = 1");
    ASSERT_EQ(r.rows.size(), 1u);
  });
}

TEST_F(CitusTest, CitusRemoveNode) {
  // worker3 exists in the directory but starts unregistered (spare).
  DeploymentOptions options;
  options.num_workers = 2;
  options.spare_workers = 1;
  deploy_ = std::make_unique<Deployment>(&sim_, options);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "CREATE TABLE ref (id bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_reference_table('ref')");
    MustQuery(**conn, "INSERT INTO ref VALUES (1, 'a')");
    // Unregistered / unknown nodes cannot be removed.
    EXPECT_FALSE((*conn)->Query("SELECT citus_remove_node('worker3')").ok());
    EXPECT_FALSE((*conn)->Query("SELECT citus_remove_node('nosuch')").ok());
    // Register worker3; it gets a reference-table replica but no kv shards
    // (shards only move on rebalance).
    MustQuery(**conn, "SELECT citus_add_node('worker3')");
    EXPECT_EQ(deploy_->metadata().workers.size(), 3u);
    const CitusTable* ref = deploy_->metadata().Find("ref");
    int replicas_on_w3 = 0;
    for (const auto& r : ref->replica_nodes) replicas_on_w3 += r == "worker3";
    EXPECT_EQ(replicas_on_w3, 1);
    // A worker that still holds shard placements is refused.
    auto refused = (*conn)->Query("SELECT citus_remove_node('worker1')");
    EXPECT_FALSE(refused.ok());
    EXPECT_NE(refused.status().ToString().find("placements"),
              std::string::npos);
    EXPECT_EQ(deploy_->metadata().workers.size(), 3u);
    // worker3 holds no kv placements: removal succeeds and drops its
    // reference replica.
    MustQuery(**conn, "SELECT citus_remove_node('worker3')");
    EXPECT_EQ(deploy_->metadata().workers.size(), 2u);
    for (const auto& r : ref->replica_nodes) EXPECT_NE(r, "worker3");
    engine::Node* w3 = deploy_->cluster().directory().Find("worker3");
    ASSERT_NE(w3, nullptr);
    EXPECT_EQ(w3->catalog().Find(ref->ShardName(ref->shards[0].shard_id)),
              nullptr);
    // The cluster still works after the removal.
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'x')");
    QueryResult r = MustQuery(**conn, "SELECT count(*) FROM kv");
    EXPECT_EQ(r.rows[0][0].int_value(), 1);
  });
}

TEST_F(CitusTest, ExistingRowsMigrateOnDistribution) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE pre (key bigint, v text)");
    MustQuery(**conn, "INSERT INTO pre VALUES (1, 'a'), (2, 'b'), (3, 'c')");
    MustQuery(**conn, "SELECT create_distributed_table('pre', 'key')");
    QueryResult r = MustQuery(**conn, "SELECT count(*) FROM pre");
    EXPECT_EQ(r.rows[0][0].int_value(), 3);
    // The shell is empty; the rows live in shards.
    engine::TableInfo* shell = deploy_->coordinator()->catalog().Find("pre");
    EXPECT_EQ(shell->heap->num_rows(), 0u);
  });
}

}  // namespace
}  // namespace citusx::citus
