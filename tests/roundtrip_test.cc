// Randomized round-trip properties: generated expressions must survive
// deparse -> parse -> deparse (fixed point) and evaluate identically, which
// is the invariant the coordinator/worker SQL protocol depends on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/deparser.h"
#include "sql/eval.h"
#include "sql/parser.h"

namespace citusx::sql {
namespace {

// Random expression over two bound columns (slot 0 bigint, slot 1 text).
ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(0.3)) {
    switch (rng.Uniform(0, 4)) {
      case 0:
        return MakeConst(Datum::Int8(rng.Uniform(-100, 100)));
      case 1:
        return MakeConst(Datum::Text(rng.AlphaString(1, 6)));
      case 2:
        return MakeConst(Datum::Bool(rng.Chance(0.5)));
      case 3:
        return MakeColumnRef("", "a");
      default:
        return MakeConst(Datum::Null());
    }
  }
  switch (rng.Uniform(0, 6)) {
    case 0: {
      BinOp arith[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul};
      return MakeBinary(arith[rng.Uniform(0, 2)], RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    }
    case 1: {
      BinOp cmp[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt, BinOp::kGe};
      return MakeBinary(cmp[rng.Uniform(0, 3)], RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    }
    case 2:
      return MakeBinary(rng.Chance(0.5) ? BinOp::kAnd : BinOp::kOr,
                        RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 3:
      return MakeUnary(UnOp::kNot, RandomExpr(rng, depth - 1));
    case 4: {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kCase;
      e->case_has_else = true;
      e->args = {RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1),
                 RandomExpr(rng, depth - 1)};
      return e;
    }
    default:
      return MakeFunc("coalesce",
                      {RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1)});
  }
}

class ExprRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ExprRoundTrip, DeparseParseFixedPointAndEvalAgreement) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 11);
  for (int i = 0; i < 200; i++) {
    ExprPtr original = RandomExpr(rng, 4);
    std::string text1 = DeparseExpr(*original);
    auto reparsed = ParseExpression(text1);
    ASSERT_TRUE(reparsed.ok()) << text1 << ": "
                               << reparsed.status().ToString();
    std::string text2 = DeparseExpr(**reparsed);
    EXPECT_EQ(text1, text2) << "not a fixed point";
    // Bind both and compare evaluation on a sample row.
    Row row = {Datum::Int8(rng.Uniform(-5, 5))};
    auto bind = [](ExprPtr& e) {
      WalkExprMut(e, [](Expr& x) {
        if (x.kind == ExprKind::kColumnRef) x.slot = 0;
      });
    };
    ExprPtr a = original->Clone(), b = *reparsed;
    bind(a);
    bind(b);
    EvalContext ctx;
    ctx.row = &row;
    auto va = Eval(*a, ctx);
    auto vb = Eval(*b, ctx);
    ASSERT_EQ(va.ok(), vb.ok()) << text1;
    if (va.ok()) {
      if (va->is_null() || vb->is_null()) {
        EXPECT_EQ(va->is_null(), vb->is_null()) << text1;
      } else {
        EXPECT_EQ(Datum::Compare(*va, *vb), 0) << text1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace citusx::sql
