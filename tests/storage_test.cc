// Unit tests for the storage layer: buffer pool, MVCC heap, B-tree index,
// trigram GIN index, columnar store.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/simulation.h"
#include "sql/eval.h"
#include "storage/buffer_pool.h"
#include "storage/columnar.h"
#include "storage/heap.h"
#include "storage/index.h"

namespace citusx::storage {
namespace {

using sql::Datum;

// A no-commit-tracking resolver for tests that don't exercise MVCC.
class FakeResolver : public TxnStatusResolver {
 public:
  std::set<TxnId> committed;
  std::set<TxnId> aborted;
  bool IsCommitted(TxnId xid) const override { return committed.count(xid) > 0; }
  bool IsAborted(TxnId xid) const override { return aborted.count(xid) > 0; }
};

class StorageTest : public ::testing::Test {
 protected:
  StorageTest()
      : disk_(&sim_, 7500, 8),
        pool_(&sim_, &disk_, /*capacity=*/64 * 8192, /*page=*/8192) {}

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  void TearDown() override { sim_.Shutdown(); }

  sim::Simulation sim_;
  sim::DiskResource disk_;
  BufferPool pool_;
};

TEST_F(StorageTest, BufferPoolHitsAndMisses) {
  RunSim([&] {
    BlockId a{1, 0}, b{1, 1};
    EXPECT_TRUE(pool_.Access(a, false));
    EXPECT_EQ(pool_.misses(), 1);
    EXPECT_TRUE(pool_.Access(a, false));
    EXPECT_EQ(pool_.hits(), 1);
    EXPECT_TRUE(pool_.Access(b, true));
    EXPECT_EQ(pool_.misses(), 2);
    EXPECT_EQ(pool_.resident_pages(), 2);
  });
}

TEST_F(StorageTest, BufferPoolEvictsLru) {
  RunSim([&] {
    // Capacity is 64 pages; touch 100 distinct blocks.
    for (uint64_t i = 0; i < 100; i++) {
      pool_.Access(BlockId{2, i}, false);
    }
    EXPECT_LE(pool_.resident_pages(), 64);
    // Most recent blocks are resident (no new misses).
    int64_t misses = pool_.misses();
    pool_.Access(BlockId{2, 99}, false);
    EXPECT_EQ(pool_.misses(), misses);
    // The oldest block was evicted.
    pool_.Access(BlockId{2, 0}, false);
    EXPECT_EQ(pool_.misses(), misses + 1);
  });
}

TEST_F(StorageTest, BufferPoolForget) {
  RunSim([&] {
    pool_.Access(BlockId{3, 0}, false);
    pool_.Access(BlockId{4, 0}, false);
    pool_.Forget(3);
    EXPECT_EQ(pool_.resident_pages(), 1);
  });
}

TEST_F(StorageTest, HeapMvccVisibility) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"v", sql::TypeId::kInt8, false, false, ""});
    HeapTable heap(10, schema, &pool_);
    FakeResolver resolver;

    auto rid = heap.Insert({Datum::Int8(1)}, /*xmin=*/5);
    ASSERT_TRUE(rid.ok());

    Snapshot before;  // xmax=5: txn 5 not yet visible
    before.xmax = 5;
    EXPECT_EQ(heap.VisibleVersion(*rid, before, resolver), nullptr);

    Snapshot after;
    after.xmax = 10;
    EXPECT_EQ(heap.VisibleVersion(*rid, after, resolver), nullptr);  // not committed
    resolver.committed.insert(5);
    ASSERT_NE(heap.VisibleVersion(*rid, after, resolver), nullptr);

    // Own uncommitted writes are visible to self.
    Snapshot self;
    self.self = 5;
    self.xmax = 6;
    resolver.committed.erase(5);
    EXPECT_NE(heap.VisibleVersion(*rid, self, resolver), nullptr);
  });
}

TEST_F(StorageTest, HeapUpdateCreatesVersionChain) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"v", sql::TypeId::kInt8, false, false, ""});
    HeapTable heap(11, schema, &pool_);
    FakeResolver resolver;
    auto rid = heap.Insert({Datum::Int8(1)}, 5);
    resolver.committed.insert(5);
    ASSERT_TRUE(heap.UpdateRow(*rid, {Datum::Int8(2)}, 7, resolver).ok());

    Snapshot old_snap;  // sees only txn 5
    old_snap.xmax = 6;
    const TupleVersion* v = heap.VisibleVersion(*rid, old_snap, resolver);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->row[0].int_value(), 1);

    resolver.committed.insert(7);
    Snapshot new_snap;
    new_snap.xmax = 8;
    v = heap.VisibleVersion(*rid, new_snap, resolver);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->row[0].int_value(), 2);
    EXPECT_EQ(heap.dead_versions(), 1);
  });
}

TEST_F(StorageTest, HeapAbortedUpdateInvisible) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"v", sql::TypeId::kInt8, false, false, ""});
    HeapTable heap(12, schema, &pool_);
    FakeResolver resolver;
    auto rid = heap.Insert({Datum::Int8(1)}, 5);
    resolver.committed.insert(5);
    ASSERT_TRUE(heap.UpdateRow(*rid, {Datum::Int8(99)}, 7, resolver).ok());
    resolver.aborted.insert(7);
    Snapshot snap;
    snap.xmax = 10;
    const TupleVersion* v = heap.VisibleVersion(*rid, snap, resolver);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->row[0].int_value(), 1);  // aborted update ignored
    // Latest non-aborted version is the original (for the next updater).
    const TupleVersion* latest = heap.LatestVersion(*rid, resolver);
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->row[0].int_value(), 1);
  });
}

TEST_F(StorageTest, HeapVacuumRespectsHorizon) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"v", sql::TypeId::kInt8, false, false, ""});
    HeapTable heap(13, schema, &pool_);
    FakeResolver resolver;
    auto rid = heap.Insert({Datum::Int8(1)}, 2);
    resolver.committed.insert(2);
    heap.UpdateRow(*rid, {Datum::Int8(2)}, 4, resolver).ok();
    resolver.committed.insert(4);
    // An old transaction (xid 3) may still need the old version.
    EXPECT_EQ(heap.Vacuum(/*oldest_active=*/3, resolver), 0);
    // Once the horizon passes, the superseded version is reclaimed.
    EXPECT_EQ(heap.Vacuum(/*oldest_active=*/10, resolver), 1);
    Snapshot snap;
    snap.xmax = 10;
    const TupleVersion* v = heap.VisibleVersion(*rid, snap, resolver);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->row[0].int_value(), 2);
  });
}

TEST_F(StorageTest, BtreeEqualAndPrefixAndRange) {
  RunSim([&] {
    BtreeIndex index(20, {0, 1}, false, &pool_);
    for (int a = 0; a < 5; a++) {
      for (int b = 0; b < 10; b++) {
        index.Insert({Datum::Int8(a), Datum::Int8(b)},
                     static_cast<RowId>(a * 10 + b));
      }
    }
    std::vector<RowId> out;
    index.EqualRange({Datum::Int8(3), Datum::Int8(7)}, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 37u);
    out.clear();
    index.EqualRange({Datum::Int8(2)}, &out);  // prefix
    EXPECT_EQ(out.size(), 10u);
    out.clear();
    Datum lo = Datum::Int8(1), hi = Datum::Int8(2);
    index.Range(&lo, true, &hi, true, &out);
    EXPECT_EQ(out.size(), 20u);
    out.clear();
    index.Range(&lo, false, &hi, false, &out);  // exclusive: nothing between
    EXPECT_EQ(out.size(), 0u);
    // Remove one entry.
    index.Remove({Datum::Int8(3), Datum::Int8(7)}, 37);
    out.clear();
    index.EqualRange({Datum::Int8(3), Datum::Int8(7)}, &out);
    EXPECT_TRUE(out.empty());
  });
}

TEST_F(StorageTest, GinTrgmCandidatesAreSuperset) {
  RunSim([&] {
    GinTrgmIndex index(21, &pool_);
    std::vector<std::string> docs = {
        "PostgreSQL is a database", "citus scales postgres",
        "mysql is different",       "the postgresql planner",
        "nothing relevant here"};
    for (size_t i = 0; i < docs.size(); i++) {
      index.Insert(docs[i], static_cast<RowId>(i));
    }
    auto trigrams = GinTrgmIndex::PatternTrigrams("%postgres%");
    ASSERT_FALSE(trigrams.empty());
    std::vector<RowId> candidates;
    ASSERT_TRUE(index.Candidates(trigrams, &candidates));
    // Everything that truly matches must be among the candidates.
    for (size_t i = 0; i < docs.size(); i++) {
      if (sql::LikeMatch(docs[i], "%postgres%", true)) {
        EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                            static_cast<RowId>(i)),
                  candidates.end())
            << docs[i];
      }
    }
    // And a document with none of the trigrams is not a candidate.
    EXPECT_EQ(std::find(candidates.begin(), candidates.end(), RowId{4}),
              candidates.end());
  });
}

TEST_F(StorageTest, GinPatternTrigramsFromLiteralRuns) {
  auto t1 = GinTrgmIndex::PatternTrigrams("%postgres%");
  EXPECT_FALSE(t1.empty());
  auto t2 = GinTrgmIndex::PatternTrigrams("%ab%");  // too short
  EXPECT_TRUE(t2.empty());
  auto t3 = GinTrgmIndex::PatternTrigrams("abc%def");
  EXPECT_EQ(t3.size(), 2u);  // "abc", "def"
  auto t4 = GinTrgmIndex::PatternTrigrams("a_c");
  EXPECT_TRUE(t4.empty());
}

TEST_F(StorageTest, ColumnarProjectionReducesIo) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"a", sql::TypeId::kInt8, false, false, ""});
    schema.columns.push_back(sql::ColumnDef{"pad", sql::TypeId::kText, false, false, ""});
    ColumnarTable table(30, schema, &pool_);
    FakeResolver resolver;
    for (int i = 0; i < 25000; i++) {
      ASSERT_TRUE(table
                      .Insert({Datum::Int8(i), Datum::Text(std::string(200, 'x'))},
                              2)
                      .ok());
    }
    resolver.committed.insert(2);
    EXPECT_GE(table.num_stripes(), 2);
    Snapshot snap;
    snap.xmax = 10;
    // Evict everything, scan only column 0.
    pool_.Forget(30);
    int64_t misses0 = pool_.misses();
    int64_t count = 0;
    ASSERT_TRUE(table.Scan(snap, resolver, {0}, [&](const sql::Row& row) {
      count++;
      return true;
    }));
    int64_t narrow = pool_.misses() - misses0;
    EXPECT_EQ(count, 25000);
    pool_.Forget(30);
    int64_t misses1 = pool_.misses();
    ASSERT_TRUE(table.Scan(snap, resolver, {}, [&](const sql::Row& row) {
      return true;
    }));
    int64_t wide = pool_.misses() - misses1;
    EXPECT_LT(narrow * 5, wide);  // the pad column dominates I/O
  });
}

TEST_F(StorageTest, ColumnarStripeVisibility) {
  RunSim([&] {
    sql::Schema schema;
    schema.columns.push_back(sql::ColumnDef{"a", sql::TypeId::kInt8, false, false, ""});
    ColumnarTable table(31, schema, &pool_);
    FakeResolver resolver;
    ASSERT_TRUE(table.Insert({Datum::Int8(1)}, 5).ok());
    Snapshot snap;
    snap.xmax = 10;
    int64_t count = 0;
    table.Scan(snap, resolver, {}, [&](const sql::Row&) {
      count++;
      return true;
    });
    EXPECT_EQ(count, 0);  // txn 5 not committed
    resolver.committed.insert(5);
    table.Scan(snap, resolver, {}, [&](const sql::Row&) {
      count++;
      return true;
    });
    EXPECT_EQ(count, 1);
  });
}

// Property sweep: B-tree results always match a brute-force scan.
class BtreePropertyTest : public StorageTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(BtreePropertyTest, MatchesBruteForce) {
  RunSim([&] {
    Rng rng(static_cast<uint64_t>(GetParam()));
    BtreeIndex index(40, {0}, false, &pool_);
    std::vector<int64_t> keys;
    for (int i = 0; i < 300; i++) {
      int64_t k = rng.Uniform(0, 50);
      keys.push_back(k);
      index.Insert({Datum::Int8(k)}, static_cast<RowId>(i));
    }
    for (int probe = 0; probe < 20; probe++) {
      int64_t k = rng.Uniform(0, 50);
      std::vector<RowId> got;
      index.EqualRange({Datum::Int8(k)}, &got);
      size_t expected = 0;
      for (int64_t key : keys) expected += key == k ? 1 : 0;
      EXPECT_EQ(got.size(), expected) << "key " << k;

      int64_t lo = rng.Uniform(0, 50), hi = rng.Uniform(lo, 50);
      Datum dlo = Datum::Int8(lo), dhi = Datum::Int8(hi);
      got.clear();
      index.Range(&dlo, true, &dhi, true, &got);
      expected = 0;
      for (int64_t key : keys) expected += (key >= lo && key <= hi) ? 1 : 0;
      EXPECT_EQ(got.size(), expected) << lo << ".." << hi;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreePropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace citusx::storage
