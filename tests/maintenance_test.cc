// Tests for the maintenance daemon (§3.1 background workers): automatic 2PC
// recovery over virtual time, and the consistent restore point (§3.9).
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "common/str.h"

namespace citusx::citus {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }
  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

TEST_F(MaintenanceTest, DaemonRecoversOrphanedPreparedTransaction) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.recovery_poll_interval = 10 * sim::kSecond;
  deploy_ = std::make_unique<Deployment>(&sim_, options);
  sim_.Spawn("test", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE t (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('t', 'key')").ok());
    const CitusTable* ct = deploy_->metadata().Find("t");
    int64_t key = 1;
    while (ct->shards[static_cast<size_t>(ct->ShardIndexForHash(
                          sql::Datum::Int8(key).PartitionHash()))]
               .placement != "worker1") {
      key++;
    }
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("INSERT INTO t VALUES (%lld, 0)",
                                      static_cast<long long>(key)))
                    .ok());
    // Orphan a prepared transaction on worker1 with a commit record on the
    // coordinator (as if the coordinator died between local commit and
    // COMMIT PREPARED).
    engine::Node* w1 = deploy_->cluster().directory().Find("worker1");
    auto ws = w1->OpenSession();
    std::string shard = ct->ShardName(
        ct->shards[static_cast<size_t>(ct->ShardIndexForHash(
                       sql::Datum::Int8(key).PartitionHash()))]
            .shard_id);
    ASSERT_TRUE(ws->Execute("BEGIN").ok());
    ASSERT_TRUE(ws->Execute(StrFormat("UPDATE %s SET v = 9 WHERE key = %lld",
                                      shard.c_str(),
                                      static_cast<long long>(key)))
                    .ok());
    ASSERT_TRUE(
        ws->Execute("PREPARE TRANSACTION 'citusx_coordinator_777_0'").ok());
    auto cs = deploy_->coordinator()->OpenSession();
    ASSERT_TRUE(cs->Execute("INSERT INTO pg_dist_transaction VALUES "
                            "('citusx_coordinator_777_0')")
                    .ok());
    ASSERT_EQ(w1->txns().PreparedGids().size(), 1u);
    // Let virtual time pass; the maintenance daemon must finish the commit.
    sim_.WaitFor(30 * sim::kSecond);
    EXPECT_TRUE(w1->txns().PreparedGids().empty());
    auto r = (*conn)->Query(
        StrFormat("SELECT v FROM t WHERE key = %lld",
                  static_cast<long long>(key)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), 9);
    CitusExtension* ext = deploy_->extension(deploy_->coordinator());
    EXPECT_GE(ext->recovered_txns, 1);
  });
  sim_.Run();
}

TEST_F(MaintenanceTest, RestorePointWaitsForInFlight2pc) {
  DeploymentOptions options;
  options.num_workers = 2;
  deploy_ = std::make_unique<Deployment>(&sim_, options);
  // The restore point takes an exclusive lock on pg_dist_transaction; a 2PC
  // in its commit phase holds a write on that table, so the restore point
  // serializes after it (§3.9).
  auto conn_holder = std::make_shared<std::unique_ptr<net::Connection>>();
  int64_t k1 = 0, k2 = 0;
  sim_.Spawn("setup", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE t (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('t', 'key')").ok());
    const CitusTable* ct = deploy_->metadata().Find("t");
    auto worker_of = [&](int64_t key) {
      return ct->shards[static_cast<size_t>(ct->ShardIndexForHash(
                            sql::Datum::Int8(key).PartitionHash()))]
          .placement;
    };
    k1 = 1;
    while (worker_of(k1) != "worker1") k1++;
    k2 = k1 + 1;
    while (worker_of(k2) != "worker2") k2++;
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                                      static_cast<long long>(k1),
                                      static_cast<long long>(k2)))
                    .ok());
    *conn_holder = std::move(*conn);
  });
  sim_.Run();
  sim::Time restore_done = -1, commit_done = -1;
  sim_.Spawn("writer", [&] {
    net::Connection& c = **conn_holder;
    ASSERT_TRUE(c.Query("BEGIN").ok());
    ASSERT_TRUE(c.Query(StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                  static_cast<long long>(k1)))
                    .ok());
    ASSERT_TRUE(c.Query(StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                  static_cast<long long>(k2)))
                    .ok());
    ASSERT_TRUE(c.Query("COMMIT").ok());  // 2PC with commit records
    commit_done = sim_.now();
  });
  sim_.Spawn("restore", [&] {
    sim_.WaitFor(100 * sim::kMicrosecond);  // land mid-commit
    auto rp = deploy_->Connect();
    ASSERT_TRUE(rp.ok());
    auto r = (*rp)->Query("SELECT citus_create_restore_point('backup1')");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    restore_done = sim_.now();
  });
  sim_.Run();
  EXPECT_GT(restore_done, 0);
  EXPECT_GT(commit_done, 0);
}

// Regression: a two-node cross-shard update cycle must be resolved by the
// distributed deadlock detector with exactly one victim; the survivor's
// commit must go through and the victim's work must be rolled back.
TEST_F(MaintenanceTest, DistributedDeadlockAbortsExactlyOneVictim) {
  DeploymentOptions options;
  options.num_workers = 2;
  options.citus.deadlock_poll_interval = 500 * sim::kMillisecond;
  deploy_ = std::make_unique<Deployment>(&sim_, options);
  auto conn_a = std::make_shared<std::unique_ptr<net::Connection>>();
  auto conn_b = std::make_shared<std::unique_ptr<net::Connection>>();
  int64_t k1 = 0, k2 = 0;
  sim_.Spawn("setup", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE d (key bigint PRIMARY KEY, v bigint)").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('d', 'key')").ok());
    const CitusTable* ct = deploy_->metadata().Find("d");
    auto worker_of = [&](int64_t key) {
      int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
      return ct->shards[static_cast<size_t>(idx)].placement;
    };
    k1 = 1;
    while (worker_of(k1) != "worker1") k1++;
    k2 = k1 + 1;
    while (worker_of(k2) != "worker2") k2++;
    ASSERT_TRUE((*conn)
                    ->Query(StrFormat("INSERT INTO d VALUES (%lld, 0), (%lld, 0)",
                                      static_cast<long long>(k1),
                                      static_cast<long long>(k2)))
                    .ok());
    *conn_a = std::move(*deploy_->Connect());
    *conn_b = std::move(*deploy_->Connect());
  });
  sim_.Run();
  // outcome: 1 = committed, 2 = aborted as deadlock victim
  int outcome_a = 0, outcome_b = 0;
  auto txn = [&](net::Connection& conn, int64_t first, int64_t second,
                 int* outcome) {
    ASSERT_TRUE(conn.Query("BEGIN").ok());
    auto u1 = conn.Query(StrFormat("UPDATE d SET v = v + 1 WHERE key = %lld",
                                   static_cast<long long>(first)));
    ASSERT_TRUE(u1.ok()) << u1.status().ToString();
    sim_.WaitFor(50 * sim::kMillisecond);
    auto u2 = conn.Query(StrFormat("UPDATE d SET v = v + 1 WHERE key = %lld",
                                   static_cast<long long>(second)));
    if (u2.ok()) {
      ASSERT_TRUE(conn.Query("COMMIT").ok());
      *outcome = 1;
    } else {
      EXPECT_TRUE(u2.status().IsDeadlock() || u2.status().IsAborted())
          << u2.status().ToString();
      auto rb = conn.Query("ROLLBACK");
      *outcome = 2;
    }
  };
  sim_.Spawn("txn_a", [&] { txn(**conn_a, k1, k2, &outcome_a); });
  sim_.Spawn("txn_b", [&] { txn(**conn_b, k2, k1, &outcome_b); });
  sim_.Run();
  // Exactly one victim; the other transaction committed.
  EXPECT_EQ((outcome_a == 1 ? 1 : 0) + (outcome_b == 1 ? 1 : 0), 1)
      << "outcomes: " << outcome_a << " " << outcome_b;
  EXPECT_EQ((outcome_a == 2 ? 1 : 0) + (outcome_b == 2 ? 1 : 0), 1);
  CitusExtension* ext = deploy_->extension(deploy_->coordinator());
  EXPECT_GE(ext->deadlocks_detected, 1);
  // The survivor updated both rows; the victim's work was rolled back.
  sim_.Spawn("verify", [&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    auto r = (*conn)->Query("SELECT sum(v) FROM d");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].int_value(), 2);
  });
  sim_.Run();
}

}  // namespace
}  // namespace citusx::citus
