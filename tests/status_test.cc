// Tests for the Status error taxonomy: error_class() edge cases, SQLSTATE
// mapping round-trips, unknown/empty SQLSTATE handling, and the boundary
// between transport errors (retry / fail over) and SQL errors (surface to
// the client).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"

namespace citusx {
namespace {

TEST(ErrorClassTest, OkHasNoClass) {
  EXPECT_EQ(Status::OK().error_class(), ErrorClass::kNone);
  EXPECT_EQ(Status().error_class(), ErrorClass::kNone);
}

TEST(ErrorClassTest, EmptyMessageDoesNotChangeClass) {
  // Classification is by code only; an empty message is still a real error.
  Status st = Status::Deadlock("");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error_class(), ErrorClass::kRetryableTransient);
  EXPECT_EQ(Status::Internal("").error_class(), ErrorClass::kFatal);
}

TEST(ErrorClassTest, TransientErrorsAreRetryable) {
  // The retry set: the cluster is healthy, the transaction is not. A caller
  // that re-runs the transaction should succeed.
  EXPECT_EQ(Status::Aborted("serialization").error_class(),
            ErrorClass::kRetryableTransient);
  EXPECT_EQ(Status::Deadlock("victim").error_class(),
            ErrorClass::kRetryableTransient);
  EXPECT_EQ(Status::ConnectionLost("reset").error_class(),
            ErrorClass::kRetryableTransient);
  EXPECT_EQ(Status::Timeout("statement deadline").error_class(),
            ErrorClass::kRetryableTransient);
  EXPECT_EQ(Status::ResourceExhausted("pool").error_class(),
            ErrorClass::kRetryableTransient);
}

TEST(ErrorClassTest, UnavailableMeansNodeDown) {
  EXPECT_EQ(Status::Unavailable("worker-2 is down").error_class(),
            ErrorClass::kNodeDown);
}

TEST(ErrorClassTest, SemanticErrorsAreFatal) {
  // Retrying a syntax error or a missing table cannot help.
  EXPECT_EQ(Status::InvalidArgument("syntax").error_class(),
            ErrorClass::kFatal);
  EXPECT_EQ(Status::NotFound("no table").error_class(), ErrorClass::kFatal);
  EXPECT_EQ(Status::AlreadyExists("dup").error_class(), ErrorClass::kFatal);
  EXPECT_EQ(Status::NotSupported("shape").error_class(), ErrorClass::kFatal);
  EXPECT_EQ(Status::Internal("bug").error_class(), ErrorClass::kFatal);
  EXPECT_EQ(Status::Cancelled("ctrl-c").error_class(), ErrorClass::kFatal);
  EXPECT_EQ(Status::IoError("disk").error_class(), ErrorClass::kFatal);
}

TEST(ErrorClassTest, TransportVersusSqlBoundary) {
  // The distributed executor's failover rule (paper §3.2): a *transport*
  // error means the worker or link failed and the query may be retried on a
  // replica; a *SQL* error came from a healthy worker that executed the
  // statement and rejected it — it must surface to the client unchanged,
  // never trigger failover.
  const Status transport[] = {
      Status::ConnectionLost("connection reset by peer"),
      Status::Unavailable("connect refused"),
      Status::Timeout("no response"),
  };
  for (const Status& st : transport) {
    EXPECT_NE(st.error_class(), ErrorClass::kFatal) << st.ToString();
  }
  const Status sql_errors[] = {
      Status::InvalidArgument("syntax error at or near \"FORM\""),
      Status::NotFound("relation \"nope\" does not exist"),
      Status::AlreadyExists("duplicate key value"),
  };
  for (const Status& st : sql_errors) {
    EXPECT_EQ(st.error_class(), ErrorClass::kFatal) << st.ToString();
  }
}

TEST(ErrorClassTest, ClassNamesAreStable) {
  EXPECT_STREQ(ErrorClassName(ErrorClass::kNone), "None");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kRetryableTransient),
               "RetryableTransient");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kNodeDown), "NodeDown");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kFatal), "Fatal");
}

TEST(SqlStateTest, OkIsSuccessfulCompletion) {
  EXPECT_STREQ(SqlState(StatusCode::kOk), "00000");
}

TEST(SqlStateTest, WellKnownCodes) {
  EXPECT_STREQ(SqlState(StatusCode::kNotFound), "42P01");
  EXPECT_STREQ(SqlState(StatusCode::kDeadlock), "40P01");
  EXPECT_STREQ(SqlState(StatusCode::kAborted), "40001");
  EXPECT_STREQ(SqlState(StatusCode::kConnectionLost), "08006");
  EXPECT_STREQ(SqlState(StatusCode::kNotSupported), "0A000");
  EXPECT_STREQ(SqlState(StatusCode::kInternal), "XX000");
}

TEST(SqlStateTest, EveryCodeHasAFiveCharState) {
  const StatusCode all[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kNotSupported, StatusCode::kInternal,
      StatusCode::kAborted,     StatusCode::kDeadlock,
      StatusCode::kUnavailable, StatusCode::kResourceExhausted,
      StatusCode::kCancelled,   StatusCode::kIoError,
      StatusCode::kConnectionLost, StatusCode::kTimeout,
  };
  for (StatusCode code : all) {
    EXPECT_EQ(std::string(SqlState(code)).size(), 5u)
        << StatusCodeName(code);
  }
}

TEST(SqlStateTest, RoundTripPreservesHandlingClass) {
  // SQLSTATE is the wire form of the error taxonomy; crossing the wire must
  // not change how the coordinator handles a worker error.
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kAlreadyExists,   StatusCode::kNotSupported,
      StatusCode::kInternal,        StatusCode::kAborted,
      StatusCode::kDeadlock,        StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kCancelled,
      StatusCode::kConnectionLost,  StatusCode::kTimeout,
  };
  for (StatusCode code : codes) {
    StatusCode back = StatusCodeFromSqlState(SqlState(code));
    EXPECT_EQ(Status(back, "").error_class(), Status(code, "").error_class())
        << StatusCodeName(code) << " -> " << SqlState(code) << " -> "
        << StatusCodeName(back);
  }
}

TEST(SqlStateTest, UnknownSqlStateIsFatal) {
  // An error we cannot identify must not be retried blindly: map to
  // kInternal (class Fatal).
  for (const char* state : {"99999", "ZZZZZ", "12345"}) {
    StatusCode code = StatusCodeFromSqlState(state);
    EXPECT_EQ(code, StatusCode::kInternal) << state;
    EXPECT_EQ(Status(code, "").error_class(), ErrorClass::kFatal) << state;
  }
}

TEST(SqlStateTest, EmptyAndMalformedSqlStatesAreFatal) {
  EXPECT_EQ(StatusCodeFromSqlState(""), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromSqlState("40"), StatusCode::kInternal);      // short
  EXPECT_EQ(StatusCodeFromSqlState("40P011"), StatusCode::kInternal);  // long
  EXPECT_EQ(StatusCodeFromSqlState("4000 "), StatusCode::kInternal);
}

TEST(SqlStateTest, ClassFallbacksForUnmappedStates) {
  // States we never emit ourselves still classify by their two-char class:
  // class 08 (connection exception) is a transport error, class 40
  // (transaction rollback) is retryable.
  EXPECT_EQ(StatusCodeFromSqlState("08P01"), StatusCode::kConnectionLost);
  EXPECT_EQ(StatusCodeFromSqlState("40002"), StatusCode::kAborted);
  // Class 42 (syntax or access rule violation) without an exact match is a
  // semantic error.
  StatusCode c42 = StatusCodeFromSqlState("42883");
  EXPECT_EQ(Status(c42, "").error_class(), ErrorClass::kFatal);
}

TEST(SqlStateTest, SuccessRoundTrip) {
  EXPECT_EQ(StatusCodeFromSqlState("00000"), StatusCode::kOk);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status st = Status::Deadlock("canceling statement due to deadlock");
  EXPECT_NE(st.ToString().find("Deadlock"), std::string::npos);
  EXPECT_NE(st.ToString().find("canceling statement"), std::string::npos);
}

TEST(StatusTest, IgnoreStatusMacroCompilesAndEvaluatesOnce) {
  int evaluations = 0;
  auto fallible = [&evaluations]() {
    evaluations++;
    return Status::Internal("ignored on purpose");
  };
  CITUSX_IGNORE_STATUS(fallible(), "test: the macro must evaluate once");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace citusx
