// Columnar distributed tables (§2.4 / Table 2 "columnar storage") and
// batched connection round trips.
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "common/str.h"

namespace citusx {
namespace {

class ColumnarCitusTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }
  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }
  sim::Simulation sim_;
  std::unique_ptr<citus::Deployment> deploy_;
};

TEST_F(ColumnarCitusTest, ColumnarShardsAnswerAnalyticalQueries) {
  citus::DeploymentOptions options;
  options.num_workers = 2;
  deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    // Columnar shards: set the access method before distributing (the
    // citusx analogue of Citus' columnar table access method).
    ASSERT_TRUE(
        (*conn)->Query("CREATE TABLE facts (k bigint, grp bigint, v bigint, "
                       "pad text)")
            .ok());
    ASSERT_TRUE(
        (*conn)->Query("SET citusx.shard_access_method = 'columnar'").ok());
    ASSERT_TRUE(
        (*conn)->Query("SELECT create_distributed_table('facts', 'k')").ok());
    ASSERT_TRUE((*conn)->Query("SET citusx.shard_access_method = ''").ok());
    // Shards on the workers are columnar.
    const citus::CitusTable* t = deploy_->metadata().Find("facts");
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->columnar_shards);
    std::vector<std::vector<std::string>> rows;
    for (int i = 0; i < 2000; i++) {
      rows.push_back({std::to_string(i), std::to_string(i % 5),
                      std::to_string(i * 2), std::string(50, 'p')});
    }
    ASSERT_TRUE((*conn)->CopyIn("facts", {}, std::move(rows)).ok());
    int columnar_shards = 0;
    for (engine::Node* w : deploy_->workers()) {
      for (const auto& s : t->shards) {
        engine::TableInfo* info = w->catalog().Find(t->ShardName(s.shard_id));
        if (info != nullptr && info->is_columnar()) columnar_shards++;
      }
    }
    EXPECT_EQ(columnar_shards, 32);
    // Aggregates work over columnar shards.
    auto r = (*conn)->Query("SELECT count(*), sum(v) FROM facts");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].int_value(), 2000);
    EXPECT_EQ(r->rows[0][1].int_value(), 2000LL * 1999);
    r = (*conn)->Query(
        "SELECT grp, count(*) FROM facts GROUP BY grp ORDER BY grp");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 5u);
    for (const auto& row : r->rows) EXPECT_EQ(row[1].int_value(), 400);
    // Updates are rejected (columnar limitation, like Citus columnar).
    auto upd = (*conn)->Query("UPDATE facts SET v = 0 WHERE k = 1");
    EXPECT_FALSE(upd.ok());
  });
}

TEST_F(ColumnarCitusTest, QueryBatchSingleRoundTrip) {
  citus::DeploymentOptions options;
  options.num_workers = 1;
  deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  RunSim([&] {
    auto conn = deploy_->Connect("worker1");
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Query("CREATE TABLE t (a bigint)").ok());
    ASSERT_TRUE((*conn)->Query("INSERT INTO t VALUES (1), (2)").ok());
    // Results flow through and errors surface; timing compares read-only
    // round trips (writes would skew on WAL group-commit boundaries).
    sim::Time t0 = sim_.now();
    auto r = (*conn)->QueryBatch({"SELECT count(*) FROM t",
                                  "SELECT count(*) FROM t",
                                  "SELECT sum(a) FROM t"});
    sim::Time batched = sim_.now() - t0;
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].int_value(), 3);
    t0 = sim_.now();
    ASSERT_TRUE((*conn)->Query("SELECT count(*) FROM t").ok());
    ASSERT_TRUE((*conn)->Query("SELECT count(*) FROM t").ok());
    auto r2 = (*conn)->Query("SELECT sum(a) FROM t");
    sim::Time separate = sim_.now() - t0;
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->rows[0][0].int_value(), 3);
    // The batch saves two round trips (1 ms at the default RTT).
    EXPECT_LT(batched + sim::kMillisecond / 2, separate);
    // Errors mid-batch surface and stop the batch.
    auto bad = (*conn)->QueryBatch(
        {"INSERT INTO t VALUES (5)", "SELECT * FROM missing"});
    EXPECT_FALSE(bad.ok());
  });
}

}  // namespace
}  // namespace citusx
