// Transaction-pooler tests: session-state correctness under multiplexing.
// The core test is a seeded differential check — a random stream of SET /
// PREPARE / EXECUTE / DEALLOCATE / DISCARD / transaction-block statements
// runs through pooled sessions (few physical connections, state replayed on
// attach) and through dedicated-connection oracle sessions, and every
// statement's outcome must match. Failures print the seed and the statement
// so they replay deterministically. Also: prepared-statement isolation
// across sessions sharing one backend, and citus.metadata_peer_version
// stamps surviving multiplexing (stale rejection follows the session, not
// the physical connection).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "citus/deploy.h"
#include "common/rng.h"
#include "common/str.h"
#include "pool/pooler.h"

namespace citusx::pool {
namespace {

using engine::QueryResult;

constexpr uint64_t kSeed = 20260809;
constexpr int kRounds = 120;
constexpr int kSessions = 5;

class PoolTest : public ::testing::Test {
 protected:
  void MakeDeployment(int workers) {
    citus::DeploymentOptions options;
    options.num_workers = workers;
    deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  void TearDown() override { sim_.Shutdown(); }

  net::NodeDirectory& directory() { return deploy_->cluster().directory(); }

  QueryResult MustQuery(net::Connection& conn, const std::string& sql) {
    auto r = conn.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  // Both sides must agree on success, error class, tag, and rows.
  void ExpectSame(const Result<QueryResult>& pooled,
                  const Result<QueryResult>& oracle, const std::string& sql) {
    ASSERT_EQ(pooled.ok(), oracle.ok())
        << sql << " pooled=" << (pooled.ok() ? "ok" : pooled.status().ToString())
        << " oracle=" << (oracle.ok() ? "ok" : oracle.status().ToString());
    if (!pooled.ok()) {
      EXPECT_EQ(pooled.status().code(), oracle.status().code()) << sql;
      return;
    }
    EXPECT_EQ(pooled->command_tag, oracle->command_tag) << sql;
    EXPECT_EQ(pooled->rows_affected, oracle->rows_affected) << sql;
    ASSERT_EQ(pooled->rows.size(), oracle->rows.size()) << sql;
    for (size_t i = 0; i < pooled->rows.size(); i++) {
      ASSERT_EQ(pooled->rows[i].size(), oracle->rows[i].size()) << sql;
      for (size_t c = 0; c < pooled->rows[i].size(); c++) {
        EXPECT_EQ(sql::Datum::Compare(pooled->rows[i][c], oracle->rows[i][c]),
                  0)
            << sql << " row " << i << " col " << c;
      }
    }
  }

  sim::Simulation sim_;
  std::unique_ptr<citus::Deployment> deploy_;
};

// One random step of a session's statement stream. Transaction blocks are
// generated as a unit so the pooled/oracle txn states never diverge from
// test-side bookkeeping.
std::vector<std::string> GenStep(Rng* rng, int session) {
  switch (rng->Uniform(0, 9)) {
    case 0:
    case 1:
      return {"SET app.tag = 's" + std::to_string(session) + "_" +
              std::to_string(rng->Uniform(0, 99)) + "'"};
    case 2:
      // Same statement name in every session: leaks across backends show
      // up as wrong EXECUTE results or spurious duplicate-prepare errors.
      return {"PREPARE pq AS SELECT a + " +
              std::to_string(session * 1000 + rng->Uniform(0, 9)) +
              " FROM kv WHERE a <= $1"};
    case 3:
    case 4:
      return {"EXECUTE pq(" + std::to_string(rng->Uniform(0, 40)) + ")"};
    case 5:
      return {"DEALLOCATE pq"};
    case 6:
      return {"DISCARD ALL"};
    case 7: {
      std::vector<std::string> block = {"BEGIN"};
      int inserts = static_cast<int>(rng->Uniform(1, 3));
      for (int i = 0; i < inserts; i++) {
        block.push_back("INSERT INTO kv VALUES (" +
                        std::to_string(rng->Uniform(0, 40)) + ")");
      }
      block.push_back(rng->Uniform(0, 1) == 0 ? "COMMIT" : "ROLLBACK");
      return block;
    }
    default:
      return {"SELECT count(*), sum(a) FROM kv"};
  }
}

TEST_F(PoolTest, DifferentialPooledVsDedicatedOracle) {
  MakeDeployment(1);
  RunSim([&] {
    auto setup = deploy_->Connect();
    ASSERT_TRUE(setup.ok());
    MustQuery(**setup, "CREATE TABLE kv (a bigint)");

    PoolerOptions opts;
    opts.pool_size = 2;  // << kSessions: every attach likely swaps tenants
    TransactionPooler pooler(&sim_, &directory(), nullptr, "coordinator",
                             opts);
    std::vector<std::unique_ptr<PooledSession>> pooled;
    std::vector<std::unique_ptr<net::Connection>> oracle;
    for (int s = 0; s < kSessions; s++) {
      pooled.push_back(pooler.OpenSession());
      auto conn = deploy_->Connect();
      ASSERT_TRUE(conn.ok());
      oracle.push_back(std::move(*conn));
    }

    Rng rng(kSeed);
    for (int round = 0; round < kRounds; round++) {
      int s = static_cast<int>(rng.Uniform(0, kSessions - 1));
      for (const std::string& sql : GenStep(&rng, s)) {
        SCOPED_TRACE(StrFormat("seed=%llu round=%d session=%d",
                               static_cast<unsigned long long>(kSeed), round,
                               s));
        ExpectSame(pooled[static_cast<size_t>(s)]->Query(sql),
                   oracle[static_cast<size_t>(s)]->Query(sql), sql);
      }
      EXPECT_LE(pooler.physical_connections(), opts.pool_size);
    }
    // The whole point: far fewer backends than sessions, with real tenant
    // swapping (state replays actually happened).
    engine::Node* server = directory().Find("coordinator");
    EXPECT_GT(server->metrics().CounterValue("pool.state_replays"), 0);
    EXPECT_LE(pooler.physical_connections(), opts.pool_size);
  });
}

// Two sessions sharing one backend prepare the same statement name with
// different bodies; each EXECUTE must see its own definition.
TEST_F(PoolTest, PreparedStatementsIsolatedAcrossSessions) {
  MakeDeployment(1);
  RunSim([&] {
    PoolerOptions opts;
    opts.pool_size = 1;
    TransactionPooler pooler(&sim_, &directory(), nullptr, "coordinator",
                             opts);
    auto a = pooler.OpenSession();
    auto b = pooler.OpenSession();
    ASSERT_TRUE(a->Query("PREPARE q AS SELECT 10 + $1").ok());
    ASSERT_TRUE(b->Query("PREPARE q AS SELECT 20 + $1").ok());
    for (int i = 0; i < 3; i++) {
      auto ra = a->Query("EXECUTE q(1)");
      ASSERT_TRUE(ra.ok()) << ra.status().ToString();
      EXPECT_EQ(ra->rows[0][0].int_value(), 11);
      auto rb = b->Query("EXECUTE q(1)");
      ASSERT_TRUE(rb.ok()) << rb.status().ToString();
      EXPECT_EQ(rb->rows[0][0].int_value(), 21);
    }
    EXPECT_EQ(pooler.physical_connections(), 1);
  });
}

// SET state follows the session across backends and inside transaction
// blocks; DISCARD ALL drops it.
TEST_F(PoolTest, SetStateSurvivesTransactionBoundaries) {
  MakeDeployment(1);
  RunSim([&] {
    auto setup = deploy_->Connect();
    ASSERT_TRUE(setup.ok());
    MustQuery(**setup, "CREATE TABLE kv (a bigint)");
    PoolerOptions opts;
    opts.pool_size = 1;
    TransactionPooler pooler(&sim_, &directory(), nullptr, "coordinator",
                             opts);
    auto a = pooler.OpenSession();
    auto b = pooler.OpenSession();
    auto set = a->Query("SET app.tag = 'alpha'");
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(set->command_tag, "SET");
    // b churns the single backend between a's statements.
    ASSERT_TRUE(b->Query("SELECT count(*) FROM kv").ok());
    ASSERT_TRUE(a->Query("BEGIN").ok());
    ASSERT_TRUE(a->Query("INSERT INTO kv VALUES (1)").ok());
    ASSERT_TRUE(a->Query("COMMIT").ok());
    EXPECT_EQ(a->state_entries(), 1);  // SET survived the txn boundary
    ASSERT_TRUE(a->Query("DISCARD ALL").ok());
    EXPECT_EQ(a->state_entries(), 0);
  });
}

// The MX routing stamp is session state too: a session carrying a stale
// citus.metadata_peer_version is rejected exactly like a dedicated stale
// connection, and its stamp never leaks to other sessions sharing the
// backend.
TEST_F(PoolTest, MetadataPeerVersionStampSurvivesMultiplexing) {
  MakeDeployment(2);
  RunSim([&] {
    auto setup = deploy_->Connect();
    ASSERT_TRUE(setup.ok());
    MustQuery(**setup, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**setup, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**setup, "INSERT INTO kv VALUES (1, 'one')");

    PoolerOptions opts;
    opts.pool_size = 1;
    TransactionPooler pooler(&sim_, &directory(), nullptr, "coordinator",
                             opts);
    auto stale = pooler.OpenSession();
    auto fresh = pooler.OpenSession();
    ASSERT_TRUE(stale->Query("SET citus.metadata_peer_version = '1'").ok());
    // Unstamped session works...
    auto r = fresh->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].text_value(), "one");
    // ...the stamped one is rejected retryably, matching a dedicated
    // connection that ran the same SET.
    auto rejected = stale->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(rejected.ok());
    auto dedicated = deploy_->Connect();
    ASSERT_TRUE(dedicated.ok());
    ASSERT_TRUE(
        (*dedicated)->Query("SET citus.metadata_peer_version = '1'").ok());
    auto oracle = (*dedicated)->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_FALSE(oracle.ok());
    EXPECT_EQ(rejected.status().code(), oracle.status().code());
    EXPECT_EQ(citus::IsStaleMetadataStatus(rejected.status()),
              citus::IsStaleMetadataStatus(oracle.status()));
    // The stamp stayed with its session: the fresh one still works on the
    // same (single) physical connection.
    r = fresh->Query("SELECT v FROM kv WHERE key = 1");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].text_value(), "one");
  });
}

}  // namespace
}  // namespace citusx::pool
