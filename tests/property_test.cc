// Property-based tests: randomized data and queries checked against
// C++-computed oracles, and plain-vs-distributed result equivalence.
#include <gtest/gtest.h>

#include <algorithm>

#include "citus/deploy.h"
#include "common/str.h"
#include "engine/node.h"
#include "engine/session.h"

namespace citusx {
namespace {

using engine::QueryResult;

struct OracleRow {
  int64_t k;
  int64_t grp;
  double val;
  std::string tag;
};

std::vector<OracleRow> GenerateRows(Rng& rng, int n) {
  std::vector<OracleRow> rows;
  const char* tags[] = {"red", "green", "blue", "cyan"};
  for (int i = 0; i < n; i++) {
    rows.push_back(OracleRow{i, rng.Uniform(0, 7),
                             static_cast<double>(rng.Uniform(0, 1000)) / 4.0,
                             tags[rng.Uniform(0, 3)]});
  }
  return rows;
}

Status LoadRows(net::Connection& conn, const std::vector<OracleRow>& rows) {
  std::vector<std::vector<std::string>> copy_rows;
  for (const auto& r : rows) {
    copy_rows.push_back({std::to_string(r.k), std::to_string(r.grp),
                         StrFormat("%.2f", r.val), r.tag});
  }
  return conn.CopyIn("t", {}, std::move(copy_rows)).status();
}

// ---- engine-level properties on a single node ----

class EnginePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { sim_.Shutdown(); }
  sim::Simulation sim_;
};

TEST_P(EnginePropertyTest, FilterAggSortMatchOracle) {
  engine::Node node(&sim_, "pg", sim::DefaultCostModel());
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  auto rows = GenerateRows(rng, 400);
  sim_.Spawn("test", [&] {
    auto s = node.OpenSession();
    ASSERT_TRUE(s->Execute("CREATE TABLE t (k bigint PRIMARY KEY, grp bigint, "
                           "val double precision, tag text)")
                    .ok());
    for (const auto& r : rows) {
      ASSERT_TRUE(
          s->Execute(StrFormat("INSERT INTO t VALUES (%lld, %lld, %.2f, '%s')",
                               static_cast<long long>(r.k),
                               static_cast<long long>(r.grp), r.val,
                               r.tag.c_str()))
              .ok());
    }
    for (int probe = 0; probe < 10; probe++) {
      int64_t lo = rng.Uniform(0, 200), hi = rng.Uniform(lo, 400);
      int64_t g = rng.Uniform(0, 7);
      // Filtered count + sum.
      auto r = s->Execute(StrFormat(
          "SELECT count(*), sum(val) FROM t WHERE k >= %lld AND k < %lld "
          "AND grp <> %lld",
          static_cast<long long>(lo), static_cast<long long>(hi),
          static_cast<long long>(g)));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      int64_t expect_count = 0;
      double expect_sum = 0;
      for (const auto& row : rows) {
        if (row.k >= lo && row.k < hi && row.grp != g) {
          expect_count++;
          expect_sum += row.val;
        }
      }
      EXPECT_EQ(r->rows[0][0].int_value(), expect_count);
      if (expect_count > 0) {
        EXPECT_NEAR(r->rows[0][1].float_value(), expect_sum, 0.01);
      } else {
        EXPECT_TRUE(r->rows[0][1].is_null());
      }
      // Group-by matches a hand-rolled map.
      auto gb = s->Execute(
          StrFormat("SELECT tag, count(*), min(val) FROM t WHERE k < %lld "
                    "GROUP BY tag ORDER BY tag",
                    static_cast<long long>(hi)));
      ASSERT_TRUE(gb.ok());
      std::map<std::string, std::pair<int64_t, double>> oracle;
      for (const auto& row : rows) {
        if (row.k >= hi) continue;
        auto [it, fresh] = oracle.try_emplace(row.tag, 0, 1e300);
        it->second.first++;
        it->second.second = std::min(it->second.second, row.val);
      }
      ASSERT_EQ(gb->rows.size(), oracle.size());
      size_t i = 0;
      for (const auto& [tag, agg] : oracle) {
        EXPECT_EQ(gb->rows[i][0].text_value(), tag);
        EXPECT_EQ(gb->rows[i][1].int_value(), agg.first);
        EXPECT_NEAR(gb->rows[i][2].float_value(), agg.second, 0.01);
        i++;
      }
      // ORDER BY + LIMIT matches std::sort.
      auto top = s->Execute(
          StrFormat("SELECT k FROM t WHERE grp = %lld ORDER BY val DESC, k "
                    "LIMIT 5",
                    static_cast<long long>(g)));
      ASSERT_TRUE(top.ok());
      std::vector<OracleRow> filtered;
      for (const auto& row : rows) {
        if (row.grp == g) filtered.push_back(row);
      }
      std::sort(filtered.begin(), filtered.end(),
                [](const OracleRow& a, const OracleRow& b) {
                  if (a.val != b.val) return a.val > b.val;
                  return a.k < b.k;
                });
      ASSERT_EQ(top->rows.size(),
                std::min<size_t>(5, filtered.size()));
      for (size_t j = 0; j < top->rows.size(); j++) {
        EXPECT_EQ(top->rows[j][0].int_value(), filtered[j].k);
      }
    }
  });
  sim_.Run();
}

TEST_P(EnginePropertyTest, UpdatesNeverLoseRows) {
  engine::Node node(&sim_, "pg", sim::DefaultCostModel());
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 3);
  sim_.Spawn("test", [&] {
    auto s = node.OpenSession();
    ASSERT_TRUE(
        s->Execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").ok());
    int n = 100;
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(
          s->Execute(StrFormat("INSERT INTO t VALUES (%d, 0)", i)).ok());
    }
    int64_t expected_sum = 0;
    for (int op = 0; op < 200; op++) {
      int64_t k = rng.Uniform(0, n - 1);
      int64_t delta = rng.Uniform(-5, 5);
      auto r = s->Execute(StrFormat(
          "UPDATE t SET v = v + %lld WHERE k = %lld",
          static_cast<long long>(delta), static_cast<long long>(k)));
      ASSERT_TRUE(r.ok());
      expected_sum += delta;
    }
    auto sum = s->Execute("SELECT sum(v), count(*) FROM t");
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(sum->rows[0][0].int_value(), expected_sum);
    EXPECT_EQ(sum->rows[0][1].int_value(), n);
  });
  sim_.Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest, ::testing::Range(1, 7));

// ---- distributed equivalence: Citus must return what a single node does ----

class DistributedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedEquivalenceTest, RandomQueriesMatchSingleNode) {
  Rng data_rng(static_cast<uint64_t>(GetParam()) * 1013 + 5);
  auto rows = GenerateRows(data_rng, 300);
  std::vector<std::string> queries;
  {
    Rng qrng(static_cast<uint64_t>(GetParam()) * 7 + 1);
    for (int i = 0; i < 8; i++) {
      int64_t g = qrng.Uniform(0, 7);
      int64_t lim = qrng.Uniform(1, 20);
      switch (qrng.Uniform(0, 4)) {
        case 0:
          queries.push_back(StrFormat(
              "SELECT count(*), sum(val), avg(val) FROM t WHERE grp = %lld",
              static_cast<long long>(g)));
          break;
        case 1:
          queries.push_back(StrFormat(
              "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp"));
          break;
        case 2:
          queries.push_back(StrFormat(
              "SELECT k, val FROM t WHERE grp = %lld ORDER BY val DESC, k "
              "LIMIT %lld",
              static_cast<long long>(g), static_cast<long long>(lim)));
          break;
        case 3:
          queries.push_back(StrFormat(
              "SELECT tag, max(val), min(k) FROM t WHERE k < 200 GROUP BY tag "
              "ORDER BY 1"));
          break;
        default:
          queries.push_back(StrFormat(
              "SELECT count(DISTINCT tag) FROM t WHERE k = %lld",
              static_cast<long long>(qrng.Uniform(0, 299))));
      }
    }
  }
  auto run_all = [&](int workers, bool use_citus) {
    std::vector<std::string> reprs;
    sim::Simulation sim;
    citus::DeploymentOptions options;
    options.num_workers = workers;
    options.install_citus = use_citus;
    citus::Deployment deploy(&sim, options);
    sim.Spawn("t", [&] {
      auto conn = deploy.Connect();
      ASSERT_TRUE(conn.ok());
      ASSERT_TRUE((*conn)
                      ->Query("CREATE TABLE t (k bigint PRIMARY KEY, grp "
                              "bigint, val double precision, tag text)")
                      .ok());
      if (use_citus) {
        ASSERT_TRUE(
            (*conn)->Query("SELECT create_distributed_table('t', 'k')").ok());
      }
      ASSERT_TRUE(LoadRows(**conn, rows).ok());
      for (const auto& q : queries) {
        auto r = (*conn)->Query(q);
        ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
        std::string repr;
        for (const auto& row : r->rows) {
          for (const auto& d : row) {
            repr += d.type() == sql::TypeId::kFloat8
                        ? StrFormat("%.3f|", d.float_value())
                        : d.ToText() + "|";
          }
          repr += "\n";
        }
        reprs.push_back(repr);
      }
    });
    sim.Run();
    sim.Shutdown();
    return reprs;
  };
  auto plain = run_all(0, false);
  auto distributed = run_all(3, true);
  ASSERT_EQ(plain.size(), queries.size());
  ASSERT_EQ(distributed.size(), queries.size());
  for (size_t i = 0; i < queries.size(); i++) {
    EXPECT_EQ(plain[i], distributed[i]) << queries[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedEquivalenceTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace citusx
