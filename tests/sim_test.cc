// Unit tests for the discrete-event simulation kernel.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.h"
#include "sim/histogram.h"
#include "sim/resources.h"

namespace citusx::sim {
namespace {

TEST(Simulation, ClockAdvancesOnWait) {
  Simulation sim;
  Time seen = -1;
  sim.Spawn("p", [&] {
    EXPECT_TRUE(sim.WaitFor(5 * kMillisecond));
    seen = sim.now();
  });
  sim.Run();
  EXPECT_EQ(seen, 5 * kMillisecond);
  sim.Shutdown();
}

TEST(Simulation, ProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<int> order;
  sim.Spawn("a", [&] {
    order.push_back(1);
    sim.WaitFor(10);
    order.push_back(3);
    sim.WaitFor(20);
    order.push_back(6);
  });
  sim.Spawn("b", [&] {
    order.push_back(2);
    sim.WaitFor(15);
    order.push_back(4);
    sim.WaitFor(5);
    order.push_back(5);
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  sim.Shutdown();
}

TEST(Simulation, TieBrokenBySpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.Spawn("p", [&, i] {
      sim.WaitFor(100);
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  sim.Shutdown();
}

TEST(Simulation, BlockAndWake) {
  Simulation sim;
  Process* sleeper = nullptr;
  Time woke_at = -1;
  sleeper = sim.Spawn("sleeper", [&] {
    EXPECT_TRUE(sim.Block());
    woke_at = sim.now();
  });
  sim.Spawn("waker", [&] {
    sim.WaitFor(42);
    sim.Wake(sleeper);
  });
  sim.Run();
  EXPECT_EQ(woke_at, 42);
  sim.Shutdown();
}

TEST(Simulation, DaemonDoesNotKeepRunAlive) {
  Simulation sim;
  int daemon_ticks = 0;
  bool worker_done = false;
  sim.Spawn(
      "daemon",
      [&] {
        while (sim.WaitFor(kSecond)) daemon_ticks++;
      },
      /*daemon=*/true);
  sim.Spawn("worker", [&] {
    sim.WaitFor(3 * kSecond + 1);
    worker_done = true;
  });
  sim.Run();
  EXPECT_TRUE(worker_done);
  EXPECT_EQ(daemon_ticks, 3);
  sim.Shutdown();
}

TEST(Simulation, ShutdownCancelsBlockedProcesses) {
  Simulation sim;
  bool got_cancel = false;
  sim.Spawn(
      "stuck",
      [&] {
        bool ok = sim.Block();
        got_cancel = !ok;
      },
      /*daemon=*/true);
  sim.Spawn("worker", [&] { sim.WaitFor(1); });
  sim.Run();
  sim.Shutdown();
  EXPECT_TRUE(got_cancel);
}

TEST(Simulation, SpawnFromWithinProcess) {
  Simulation sim;
  Time child_ran_at = -1;
  sim.Spawn("parent", [&] {
    sim.WaitFor(7);
    sim.Spawn("child", [&] {
      sim.WaitFor(3);
      child_ran_at = sim.now();
    });
    sim.WaitFor(100);
  });
  sim.Run();
  EXPECT_EQ(child_ran_at, 10);
  sim.Shutdown();
}

TEST(CpuResource, SingleCoreSerializesWork) {
  Simulation sim;
  CpuResource cpu(&sim, 1);
  std::vector<Time> done;
  for (int i = 0; i < 3; i++) {
    sim.Spawn("w", [&] {
      cpu.Consume(100);
      done.push_back(sim.now());
    });
  }
  sim.Run();
  EXPECT_EQ(done, (std::vector<Time>{100, 200, 300}));
  EXPECT_EQ(cpu.busy_total(), 300);
  sim.Shutdown();
}

TEST(CpuResource, MultiCoreRunsInParallel) {
  Simulation sim;
  CpuResource cpu(&sim, 4);
  std::vector<Time> done;
  for (int i = 0; i < 4; i++) {
    sim.Spawn("w", [&] {
      cpu.Consume(100);
      done.push_back(sim.now());
    });
  }
  sim.Run();
  EXPECT_EQ(done, (std::vector<Time>{100, 100, 100, 100}));
  sim.Shutdown();
}

TEST(DiskResource, IopsCapLimitsThroughput) {
  Simulation sim;
  // 1000 IOPS, depth 1: each op takes 1ms.
  DiskResource disk(&sim, 1000, 1);
  Time end = 0;
  sim.Spawn("w", [&] {
    disk.Io(50);
    end = sim.now();
  });
  sim.Run();
  EXPECT_EQ(end, 50 * kMillisecond);
  sim.Shutdown();
}

TEST(DiskResource, QueueDepthAllowsConcurrency) {
  Simulation sim;
  DiskResource disk(&sim, 1000, 4);  // service time 4ms per op, 4 channels
  std::vector<Time> done;
  for (int i = 0; i < 8; i++) {
    sim.Spawn("w", [&] {
      disk.Io(1);
      done.push_back(sim.now());
    });
  }
  sim.Run();
  // First 4 finish at 4ms, next 4 at 8ms: aggregate 1000 IOPS.
  ASSERT_EQ(done.size(), 8u);
  EXPECT_EQ(done[3], 4 * kMillisecond);
  EXPECT_EQ(done[7], 8 * kMillisecond);
  sim.Shutdown();
}

TEST(Semaphore, FifoOrderAndBlocking) {
  Simulation sim;
  Semaphore sem(&sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; i++) {
    sim.Spawn("w", [&, i] {
      ASSERT_TRUE(sem.Acquire());
      order.push_back(i);
      sim.WaitFor(10);
      sem.Release();
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  sim.Shutdown();
}

TEST(Semaphore, TryAcquire) {
  Simulation sim;
  Semaphore sem(&sim, 2);
  int acquired = 0;
  sim.Spawn("w", [&] {
    if (sem.TryAcquire()) acquired++;
    if (sem.TryAcquire()) acquired++;
    if (sem.TryAcquire()) acquired++;  // should fail
    sem.Release();
    sem.Release();
  });
  sim.Run();
  EXPECT_EQ(acquired, 2);
  sim.Shutdown();
}

TEST(Channel, SendReceive) {
  Simulation sim;
  Channel<int> ch(&sim);
  std::vector<int> got;
  sim.Spawn("rx", [&] {
    for (int i = 0; i < 3; i++) {
      auto v = ch.Receive();
      ASSERT_TRUE(v.has_value());
      got.push_back(*v);
    }
  });
  sim.Spawn("tx", [&] {
    for (int i = 1; i <= 3; i++) {
      sim.WaitFor(10);
      ch.Send(i * 11);
    }
  });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{11, 22, 33}));
  sim.Shutdown();
}

TEST(Channel, CloseWakesReceiver) {
  Simulation sim;
  Channel<int> ch(&sim);
  bool got_nullopt = false;
  sim.Spawn("rx", [&] {
    auto v = ch.Receive();
    got_nullopt = !v.has_value();
  });
  sim.Spawn("closer", [&] {
    sim.WaitFor(5);
    ch.Close();
  });
  sim.Run();
  EXPECT_TRUE(got_nullopt);
  sim.Shutdown();
}

TEST(Channel, MultipleReceiversFifo) {
  Simulation sim;
  Channel<int> ch(&sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 2; r++) {
    sim.Spawn("rx", [&, r] {
      auto v = ch.Receive();
      ASSERT_TRUE(v.has_value());
      got.emplace_back(r, *v);
    });
  }
  sim.Spawn("tx", [&] {
    sim.WaitFor(1);
    ch.Send(100);
    sim.WaitFor(1);
    ch.Send(200);
  });
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(0, 100));
  EXPECT_EQ(got[1], std::make_pair(1, 200));
  sim.Shutdown();
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Record(i * 1000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_NEAR(h.mean(), 50500.0, 1.0);
  // Percentiles are bucket upper bounds: allow log-bucket error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 95000.0 * 0.07);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.sum(), 60);
  EXPECT_EQ(a.max(), 30);
  EXPECT_EQ(a.min(), 10);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 16; i++) h.Record(i);
  EXPECT_EQ(h.Percentile(100), 15);
}

TEST(Simulation, ManyEventsPerformance) {
  Simulation sim;
  int64_t total = 0;
  for (int p = 0; p < 10; p++) {
    sim.Spawn("w", [&] {
      for (int i = 0; i < 1000; i++) {
        sim.WaitFor(100);
        total++;
      }
    });
  }
  sim.Run();
  EXPECT_EQ(total, 10000);
  EXPECT_GE(sim.events_processed(), 10000u);
  sim.Shutdown();
}

}  // namespace
}  // namespace citusx::sim
