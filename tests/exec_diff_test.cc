// Seeded differential property test: generated filter/aggregate/join
// queries run through both the vectorized executor and the volcano oracle,
// diffing row sets. Covers NULL-heavy data, empty tables, heap and columnar
// storage, and morsel-boundary row counts. Any mismatch prints the seed and
// the offending SQL so failures replay deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str.h"
#include "engine/node.h"
#include "engine/session.h"
#include "exec/vectorized.h"
#include "sim/simulation.h"

namespace citusx::exec {
namespace {

using engine::QueryResult;
using engine::Session;
using sql::Datum;

constexpr uint64_t kSeed = 20260809;
constexpr int kRounds = 40;

bool DatumClose(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() == sql::TypeId::kFloat8 || b.type() == sql::TypeId::kFloat8) {
    double x = a.AsDouble(), y = b.AsDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return Datum::Compare(a, b) == 0;
}

/// Order-insensitive row-set comparison: both sides sorted by the full row,
/// then compared with float tolerance. Generated queries avoid
/// LIMIT-without-total-order, so multiset equality is the right contract.
bool RowSetsClose(std::vector<sql::Row> a, std::vector<sql::Row> b) {
  if (a.size() != b.size()) return false;
  auto row_less = [](const sql::Row& x, const sql::Row& y) {
    for (size_t i = 0; i < x.size() && i < y.size(); i++) {
      int c = Datum::Compare(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return x.size() < y.size();
  };
  std::sort(a.begin(), a.end(), row_less);
  std::sort(b.begin(), b.end(), row_less);
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); c++) {
      if (!DatumClose(a[i][c], b[i][c])) return false;
    }
  }
  return true;
}

/// Generates random single-table and two-table queries over a fixed schema:
/// tN(a bigint, b bigint, c double precision, g bigint), with NULLs mixed in.
class QueryGen {
 public:
  explicit QueryGen(Rng* rng) : rng_(rng) {}

  std::string Filter(const std::string& tbl) {
    auto col = [&] {
      const char* cols[] = {"a", "b", "c", "g"};
      return tbl.empty() ? std::string(cols[rng_->Uniform(0, 3)])
                         : tbl + "." + cols[rng_->Uniform(0, 3)];
    };
    auto cmp = [&] {
      const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
      return StrFormat("%s %s %lld", col().c_str(),
                       ops[rng_->Uniform(0, 5)],
                       static_cast<long long>(rng_->Uniform(-5, 120)));
    };
    std::string f = cmp();
    int extra = static_cast<int>(rng_->Uniform(0, 2));
    for (int i = 0; i < extra; i++) {
      f += rng_->Chance(0.7) ? " AND " : " OR ";
      f += rng_->Chance(0.8) ? cmp()
                             : StrFormat("%s IS NOT NULL", col().c_str());
    }
    return f;
  }

  std::string Agg() {
    switch (rng_->Uniform(0, 5)) {
      case 0: return "count(*)";
      case 1: return "sum(b)";
      case 2: return "avg(c)";
      case 3: return "min(a)";
      case 4: return "max(c)";
      default: return "count(DISTINCT g)";
    }
  }

  std::string SingleTable(const std::string& t) {
    switch (rng_->Uniform(0, 3)) {
      case 0:  // projection + filter, fully ordered
        return StrFormat("SELECT a, b, c, g FROM %s WHERE %s", t.c_str(),
                         Filter("").c_str());
      case 1:  // ungrouped aggregates
        return StrFormat("SELECT %s, %s FROM %s WHERE %s", Agg().c_str(),
                         Agg().c_str(), t.c_str(), Filter("").c_str());
      case 2:  // grouped aggregates
        return StrFormat("SELECT g, %s FROM %s WHERE %s GROUP BY g",
                         Agg().c_str(), t.c_str(), Filter("").c_str());
      default:  // sort + limit over a total order
        return StrFormat(
            "SELECT a, b FROM %s WHERE %s ORDER BY b, a LIMIT %lld",
            t.c_str(), Filter("").c_str(),
            static_cast<long long>(rng_->Uniform(1, 50)));
    }
  }

  std::string TwoTable(const std::string& t1, const std::string& t2) {
    const char* join = rng_->Chance(0.3) ? "LEFT JOIN" : "JOIN";
    std::string on = StrFormat("%s.g = %s.g", t1.c_str(), t2.c_str());
    if (rng_->Chance(0.5)) {
      return StrFormat("SELECT %s.a, %s.b FROM %s %s %s ON %s WHERE %s",
                       t1.c_str(), t2.c_str(), t1.c_str(), join, t2.c_str(),
                       on.c_str(), Filter(t1).c_str());
    }
    return StrFormat("SELECT %s.g, count(*), sum(%s.b) FROM %s %s %s ON %s "
                     "GROUP BY %s.g",
                     t1.c_str(), t2.c_str(), t1.c_str(), join, t2.c_str(),
                     on.c_str(), t1.c_str());
  }

 private:
  Rng* rng_;
};

TEST(ExecDiffTest, GeneratedQueriesMatchVolcano) {
  sim::Simulation sim;
  engine::Node node(&sim, "pg1", sim::DefaultCostModel());
  InstallVectorizedExecutor(&node);
  sim.Spawn("test", [&] {
    Rng rng(kSeed);
    auto s = node.OpenSession();
    auto must = [&](const std::string& sql) {
      auto r = s->Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    // Table sizes hit the edge cases: empty (an empty shard), tiny,
    // one-morsel, and multi-stripe columnar.
    struct Spec { const char* name; int rows; bool columnar; };
    const Spec specs[] = {
        {"t0", 0, true},         // empty columnar
        {"t1", 7, false},        // tiny heap
        {"t2", 2500, true},      // open (unsealed) stripe only
        {"t3", 23000, true},     // sealed stripes + partial open stripe
    };
    for (const Spec& spec : specs) {
      must(StrFormat("CREATE TABLE %s (a bigint, b bigint, c double "
                     "precision, g bigint) USING %s",
                     spec.name, spec.columnar ? "columnar" : "heap"));
      for (int base = 0; base < spec.rows; base += 500) {
        std::string values;
        for (int i = base; i < std::min(spec.rows, base + 500); i++) {
          if (!values.empty()) values += ",";
          // ~15% NULLs per nullable column; values clustered so filters
          // and join keys actually select and match.
          std::string b = rng.Chance(0.15)
                              ? "NULL"
                              : std::to_string(rng.Uniform(0, 100));
          std::string c = rng.Chance(0.15)
                              ? "NULL"
                              : StrFormat("%lld.%lld",
                                          static_cast<long long>(
                                              rng.Uniform(-20, 20)),
                                          static_cast<long long>(
                                              rng.Uniform(0, 9)));
          std::string g = rng.Chance(0.1)
                              ? "NULL"
                              : std::to_string(rng.Uniform(0, 12));
          values += StrFormat("(%d, %s, %s, %s)", i, b.c_str(), c.c_str(),
                              g.c_str());
        }
        must(StrFormat("INSERT INTO %s VALUES %s", spec.name,
                       values.c_str()));
      }
    }

    QueryGen gen(&rng);
    int checked = 0;
    for (int round = 0; round < kRounds; round++) {
      std::string sql;
      if (rng.Chance(0.3)) {
        const char* t1 = specs[rng.Uniform(0, 3)].name;
        const char* t2 = specs[rng.Uniform(0, 3)].name;
        if (std::string(t1) == t2) t2 = "t1";
        sql = gen.TwoTable(t1, t2);
      } else {
        sql = gen.SingleTable(specs[rng.Uniform(0, 3)].name);
      }
      ASSERT_TRUE(s->Execute("SET citus.use_vectorized_executor = 'off'").ok());
      auto oracle = s->Execute(sql);
      ASSERT_TRUE(s->Execute("SET citus.use_vectorized_executor = 'on'").ok());
      auto vec = s->Execute(sql);
      // Both executors must agree on errors too.
      ASSERT_EQ(oracle.ok(), vec.ok())
          << "seed " << kSeed << " round " << round << ": " << sql;
      if (!oracle.ok()) continue;
      EXPECT_TRUE(RowSetsClose(oracle->rows, vec->rows))
          << "seed " << kSeed << " round " << round << ": " << sql
          << "\n  volcano rows: " << oracle->rows.size()
          << "\n  vectorized rows: " << vec->rows.size();
      checked++;
    }
    // The generator must not degenerate into all-error queries.
    EXPECT_GE(checked, kRounds / 2);
  });
  sim.Run();
  sim.Shutdown();
}

}  // namespace
}  // namespace citusx::exec
