// Tests for the simulated network layer: connections, latency accounting,
// connection limits, and node-failure behaviour.
#include <gtest/gtest.h>

#include "net/cluster.h"

namespace citusx::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest() : cluster_(&sim_, sim::DefaultCostModel(), 2) {}

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  void TearDown() override { sim_.Shutdown(); }

  sim::Simulation sim_;
  Cluster cluster_;
};

TEST_F(NetTest, QueryOverConnection) {
  RunSim([&] {
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    auto r = (*conn)->Query("SELECT 1 + 2");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].int_value(), 3);
  });
}

TEST_F(NetTest, ConnectionHasEstablishmentAndRttCost) {
  RunSim([&] {
    sim::Time t0 = sim_.now();
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    sim::Time connect_time = sim_.now() - t0;
    EXPECT_GE(connect_time, cluster_.coordinator()->cost().connect_cost);
    t0 = sim_.now();
    ASSERT_TRUE((*conn)->Query("SELECT 1").ok());
    sim::Time query_time = sim_.now() - t0;
    EXPECT_GE(query_time, cluster_.coordinator()->cost().net_rtt);
  });
}

TEST_F(NetTest, SessionStatePersistsAcrossQueries) {
  RunSim([&] {
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    // A transaction spans multiple round trips on one backend session.
    ASSERT_TRUE((*conn)->Query("CREATE TABLE t (a bigint)").ok());
    ASSERT_TRUE((*conn)->Query("BEGIN").ok());
    ASSERT_TRUE((*conn)->Query("INSERT INTO t VALUES (1)").ok());
    auto mid = (*conn)->Query("SELECT count(*) FROM t");
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid->rows[0][0].int_value(), 1);
    ASSERT_TRUE((*conn)->Query("ROLLBACK").ok());
    auto after = (*conn)->Query("SELECT count(*) FROM t");
    EXPECT_EQ(after->rows[0][0].int_value(), 0);
  });
}

TEST_F(NetTest, MaxConnectionsEnforced) {
  RunSim([&] {
    std::vector<std::unique_ptr<Connection>> conns;
    int limit = cluster_.coordinator()->cost().max_connections;
    for (int i = 0; i < limit; i++) {
      auto c = cluster_.directory().Connect(nullptr, "worker2");
      ASSERT_TRUE(c.ok()) << i;
      conns.push_back(std::move(*c));
    }
    auto overflow = cluster_.directory().Connect(nullptr, "worker2");
    ASSERT_FALSE(overflow.ok());
    EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
    // Closing one frees a slot.
    conns.back()->Close();
    auto retry = cluster_.directory().Connect(nullptr, "worker2");
    EXPECT_TRUE(retry.ok());
  });
}

TEST_F(NetTest, DownNodeRefusesAndRecovers) {
  RunSim([&] {
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    engine::Node* w1 = cluster_.directory().Find("worker1");
    w1->Crash();
    auto r = (*conn)->Query("SELECT 1");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnavailable());
    auto fresh = cluster_.directory().Connect(nullptr, "worker1");
    EXPECT_FALSE(fresh.ok());
    w1->Restart();
    auto again = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE((*again)->Query("SELECT 1").ok());
  });
}

TEST_F(NetTest, CrashAbortsInFlightTransactions) {
  RunSim([&] {
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Query("CREATE TABLE t (a bigint)").ok());
    ASSERT_TRUE((*conn)->Query("BEGIN").ok());
    ASSERT_TRUE((*conn)->Query("INSERT INTO t VALUES (1)").ok());
    engine::Node* w1 = cluster_.directory().Find("worker1");
    w1->Crash();
    w1->Restart();
    auto fresh = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(fresh.ok());
    auto count = (*fresh)->Query("SELECT count(*) FROM t");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->rows[0][0].int_value(), 0);  // rolled back by the crash
  });
}

TEST_F(NetTest, LargeResultPaysBandwidth) {
  RunSim([&] {
    auto conn = cluster_.directory().Connect(nullptr, "worker1");
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Query("CREATE TABLE big (pad text)").ok());
    std::vector<std::vector<std::string>> rows;
    for (int i = 0; i < 6000; i++) rows.push_back({std::string(1000, 'x')});
    ASSERT_TRUE((*conn)->CopyIn("big", {}, std::move(rows)).ok());
    sim::Time t0 = sim_.now();
    ASSERT_TRUE((*conn)->Query("SELECT pad FROM big").ok());
    sim::Time big_time = sim_.now() - t0;
    t0 = sim_.now();
    ASSERT_TRUE((*conn)->Query("SELECT count(*) FROM big").ok());
    sim::Time small_time = sim_.now() - t0;
    // ~6MB result vs 1 row: result bandwidth (~6ms at 1GB/s) must show up.
    EXPECT_GT(big_time, small_time + 3 * sim::kMillisecond);
  });
}

}  // namespace
}  // namespace citusx::net
