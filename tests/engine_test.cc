// End-to-end tests of the single-node engine: DDL, DML, queries, MVCC,
// locking, transactions, prepared transactions, indexes, columnar storage.
#include <gtest/gtest.h>

#include "engine/node.h"
#include "engine/session.h"
#include "common/str.h"
#include "sim/simulation.h"

namespace citusx::engine {
namespace {

using sql::Datum;

// Test fixture running a single node inside a simulation. Each test body
// runs inside a simulated process.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : node_(&sim_, "pg1", sim::DefaultCostModel()) {}

  // Run `fn` as a simulated process and drive the simulation to completion.
  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
    sim_.Shutdown();
  }

  QueryResult MustExec(Session& s, const std::string& sql) {
    auto r = s.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  sim::Simulation sim_;
  Node node_;
};

TEST_F(EngineTest, CreateInsertSelect) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (a bigint PRIMARY KEY, b text, c double precision)");
    MustExec(*s, "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5)");
    QueryResult r = MustExec(*s, "SELECT a, b, c FROM t ORDER BY a");
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0].int_value(), 1);
    EXPECT_EQ(r.rows[0][1].text_value(), "one");
    EXPECT_EQ(r.rows[1][2].float_value(), 2.5);
    EXPECT_EQ(r.column_names[1], "b");
  });
}

TEST_F(EngineTest, PrimaryKeyUniqueViolation) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint PRIMARY KEY, v int)");
    MustExec(*s, "INSERT INTO t VALUES (1, 10)");
    auto dup = s->Execute("INSERT INTO t VALUES (1, 20)");
    EXPECT_FALSE(dup.ok());
    EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
    // ON CONFLICT DO NOTHING swallows it.
    QueryResult r =
        MustExec(*s, "INSERT INTO t VALUES (1, 20) ON CONFLICT DO NOTHING");
    EXPECT_EQ(r.rows_affected, 0);
    r = MustExec(*s, "SELECT v FROM t WHERE k = 1");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].int_value(), 10);
  });
}

TEST_F(EngineTest, UpdateAndDelete) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    for (int i = 0; i < 10; i++) {
      MustExec(*s, "INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
    }
    QueryResult u = MustExec(*s, "UPDATE t SET v = v + 5 WHERE k >= 7");
    EXPECT_EQ(u.rows_affected, 3);
    QueryResult r = MustExec(*s, "SELECT sum(v) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 15);
    QueryResult d = MustExec(*s, "DELETE FROM t WHERE k < 3");
    EXPECT_EQ(d.rows_affected, 3);
    r = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 7);
  });
}

TEST_F(EngineTest, AggregatesAndGroupBy) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE sales (region text, amount bigint, price double precision)");
    MustExec(*s,
             "INSERT INTO sales VALUES ('east', 10, 1.0), ('east', 20, 2.0), "
             "('west', 5, 3.0), ('west', 15, 1.0), ('north', 1, 9.0)");
    QueryResult r = MustExec(
        *s,
        "SELECT region, count(*), sum(amount), avg(price), min(amount), "
        "max(amount) FROM sales GROUP BY region ORDER BY region");
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0][0].text_value(), "east");
    EXPECT_EQ(r.rows[0][1].int_value(), 2);
    EXPECT_EQ(r.rows[0][2].int_value(), 30);
    EXPECT_EQ(r.rows[0][3].float_value(), 1.5);
    EXPECT_EQ(r.rows[2][0].text_value(), "west");
    EXPECT_EQ(r.rows[2][4].int_value(), 5);
    EXPECT_EQ(r.rows[2][5].int_value(), 15);
    // HAVING.
    r = MustExec(*s,
                 "SELECT region FROM sales GROUP BY region "
                 "HAVING count(*) > 1 ORDER BY 1");
    ASSERT_EQ(r.rows.size(), 2u);
    // Aggregate over empty input.
    r = MustExec(*s, "SELECT count(*), sum(amount) FROM sales WHERE amount > 100");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    EXPECT_TRUE(r.rows[0][1].is_null());
    // count(distinct).
    r = MustExec(*s, "SELECT count(DISTINCT region) FROM sales");
    EXPECT_EQ(r.rows[0][0].int_value(), 3);
  });
}

TEST_F(EngineTest, JoinsInnerLeftAndCommaSyntax) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE a (id bigint, x text)");
    MustExec(*s, "CREATE TABLE b (id bigint, y text)");
    MustExec(*s, "INSERT INTO a VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')");
    MustExec(*s, "INSERT INTO b VALUES (1, 'b1'), (3, 'b3'), (3, 'b3x')");
    QueryResult r = MustExec(
        *s, "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.x, b.y");
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0][0].text_value(), "a1");
    r = MustExec(
        *s,
        "SELECT a.x, b.y FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.x, b.y");
    ASSERT_EQ(r.rows.size(), 4u);
    // a2 has no match: null-padded.
    bool found_null = false;
    for (const auto& row : r.rows) {
      if (row[0].text_value() == "a2") {
        EXPECT_TRUE(row[1].is_null());
        found_null = true;
      }
    }
    EXPECT_TRUE(found_null);
    // Comma join with WHERE condition becomes a hash join.
    r = MustExec(*s,
                 "SELECT count(*) FROM a, b WHERE a.id = b.id AND b.y <> 'b3'");
    EXPECT_EQ(r.rows[0][0].int_value(), 2);
  });
}

TEST_F(EngineTest, SubqueryInFrom) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE reports (deviceid bigint, metric double precision)");
    MustExec(*s,
             "INSERT INTO reports VALUES (1, 10), (1, 20), (2, 30), (2, 50)");
    // The VeniceDB-style nested aggregation from §5 of the paper.
    QueryResult r = MustExec(
        *s,
        "SELECT avg(device_avg) FROM (SELECT deviceid, avg(metric) AS "
        "device_avg FROM reports GROUP BY deviceid) AS subq");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].float_value(), 27.5);  // (15 + 40) / 2
  });
}

TEST_F(EngineTest, OrderByLimitOffsetDistinct) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (v bigint, w text)");
    MustExec(*s,
             "INSERT INTO t VALUES (3,'c'), (1,'a'), (2,'b'), (5,'e'), "
             "(4,'d'), (3,'c')");
    QueryResult r = MustExec(*s, "SELECT v FROM t ORDER BY v DESC LIMIT 2");
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0].int_value(), 5);
    EXPECT_EQ(r.rows[1][0].int_value(), 4);
    r = MustExec(*s, "SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 2");
    // sorted: 1,2,3,3,4,5 -> offset 2 gives 3,3
    EXPECT_EQ(r.rows[0][0].int_value(), 3);
    EXPECT_EQ(r.rows[1][0].int_value(), 3);
    r = MustExec(*s, "SELECT DISTINCT v FROM t ORDER BY v");
    EXPECT_EQ(r.rows.size(), 5u);
    // ORDER BY expression not in targets (hidden sort column is stripped).
    r = MustExec(*s, "SELECT w FROM t ORDER BY v * -1 LIMIT 1");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0].size(), 1u);
    EXPECT_EQ(r.rows[0][0].text_value(), "e");
  });
}

TEST_F(EngineTest, IndexScansUsedAndCorrect) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint PRIMARY KEY, grp bigint, v text)");
    MustExec(*s, "CREATE INDEX t_grp ON t (grp)");
    for (int i = 0; i < 200; i++) {
      MustExec(*s, StrFormat("INSERT INTO t VALUES (%d, %d, 'v%d')", i, i % 10, i));
    }
    int64_t hits_before = node_.buffer_pool().hits();
    QueryResult r = MustExec(*s, "SELECT v FROM t WHERE k = 42");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].text_value(), "v42");
    EXPECT_GT(node_.buffer_pool().hits(), hits_before);
    r = MustExec(*s, "SELECT count(*) FROM t WHERE grp = 3");
    EXPECT_EQ(r.rows[0][0].int_value(), 20);
    // Range scan via pk index.
    r = MustExec(*s, "SELECT count(*) FROM t WHERE k >= 10 AND k < 20");
    EXPECT_EQ(r.rows[0][0].int_value(), 10);
    // Index remains correct after updates (stale entries rechecked).
    MustExec(*s, "UPDATE t SET grp = 99 WHERE k = 42");  // grp was 2
    r = MustExec(*s, "SELECT count(*) FROM t WHERE grp = 2");
    EXPECT_EQ(r.rows[0][0].int_value(), 19);
    r = MustExec(*s, "SELECT count(*) FROM t WHERE grp = 99");
    EXPECT_EQ(r.rows[0][0].int_value(), 1);
  });
}

TEST_F(EngineTest, GinTrgmIndexIlike) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE docs (id bigint, body text)");
    MustExec(*s, "CREATE INDEX docs_trgm ON docs USING gin ((body))");
    MustExec(*s,
             "INSERT INTO docs VALUES (1, 'PostgreSQL is great'), "
             "(2, 'mysql is different'), (3, 'I love postgres a lot')");
    QueryResult r =
        MustExec(*s, "SELECT id FROM docs WHERE body ILIKE '%postgres%' ORDER BY id");
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0].int_value(), 1);
    EXPECT_EQ(r.rows[1][0].int_value(), 3);
  });
}

TEST_F(EngineTest, MvccSnapshotIsolation) {
  RunSim([&] {
    auto s1 = node_.OpenSession();
    auto s2 = node_.OpenSession();
    MustExec(*s1, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s1, "INSERT INTO t VALUES (1, 100)");
    MustExec(*s1, "BEGIN");
    MustExec(*s1, "UPDATE t SET v = 200 WHERE k = 1");
    // s1 sees its own write; s2 still sees the old version.
    QueryResult r1 = MustExec(*s1, "SELECT v FROM t WHERE k = 1");
    EXPECT_EQ(r1.rows[0][0].int_value(), 200);
    QueryResult r2 = MustExec(*s2, "SELECT v FROM t WHERE k = 1");
    EXPECT_EQ(r2.rows[0][0].int_value(), 100);
    MustExec(*s1, "COMMIT");
    r2 = MustExec(*s2, "SELECT v FROM t WHERE k = 1");
    EXPECT_EQ(r2.rows[0][0].int_value(), 200);
  });
}

TEST_F(EngineTest, RollbackDiscardsWrites) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint, v bigint)");
    MustExec(*s, "BEGIN");
    MustExec(*s, "INSERT INTO t VALUES (1, 1)");
    MustExec(*s, "ROLLBACK");
    QueryResult r = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    // Error inside explicit txn aborts it until rollback.
    MustExec(*s, "BEGIN");
    auto bad = s->Execute("SELECT * FROM missing_table");
    EXPECT_FALSE(bad.ok());
    auto blocked = s->Execute("SELECT count(*) FROM t");
    EXPECT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.status().code(), StatusCode::kAborted);
    MustExec(*s, "ROLLBACK");
    QueryResult ok = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(ok.rows[0][0].int_value(), 0);
  });
}

TEST_F(EngineTest, RowLockBlocksConcurrentUpdate) {
  // Two concurrent transactions updating the same row serialize; the second
  // sees the first one's committed value (no lost update).
  auto s0 = node_.OpenSession();
  sim_.Spawn("setup", [&] {
    MustExec(*s0, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s0, "INSERT INTO t VALUES (1, 0)");
  });
  sim_.Run();
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 5; i++) sessions.push_back(node_.OpenSession());
  for (int i = 0; i < 5; i++) {
    sim_.Spawn("w", [&, i] {
      Session& s = *sessions[static_cast<size_t>(i)];
      MustExec(s, "BEGIN");
      MustExec(s, "UPDATE t SET v = v + 1 WHERE k = 1");
      sim_.WaitFor(10 * sim::kMillisecond);
      MustExec(s, "COMMIT");
    });
  }
  sim_.Run();
  sim_.Spawn("check", [&] {
    QueryResult r = MustExec(*s0, "SELECT v FROM t WHERE k = 1");
    EXPECT_EQ(r.rows[0][0].int_value(), 5);
  });
  sim_.Run();
  sim_.Shutdown();
}

TEST_F(EngineTest, LocalDeadlockDetected) {
  node_.StartBackgroundWorkers();
  auto s0 = node_.OpenSession();
  auto s1 = node_.OpenSession();
  auto s2 = node_.OpenSession();
  sim_.Spawn("setup", [&] {
    MustExec(*s0, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s0, "INSERT INTO t VALUES (1, 0), (2, 0)");
  });
  sim_.Run();
  int deadlocks = 0, commits = 0;
  sim_.Spawn("t1", [&] {
    MustExec(*s1, "BEGIN");
    MustExec(*s1, "UPDATE t SET v = v + 1 WHERE k = 1");
    sim_.WaitFor(100 * sim::kMillisecond);
    auto r = s1->Execute("UPDATE t SET v = v + 1 WHERE k = 2");
    if (r.ok()) {
      MustExec(*s1, "COMMIT");
      commits++;
    } else {
      EXPECT_TRUE(r.status().IsDeadlock()) << r.status().ToString();
      deadlocks++;
      MustExec(*s1, "ROLLBACK");
    }
  });
  sim_.Spawn("t2", [&] {
    MustExec(*s2, "BEGIN");
    MustExec(*s2, "UPDATE t SET v = v + 1 WHERE k = 2");
    sim_.WaitFor(100 * sim::kMillisecond);
    auto r = s2->Execute("UPDATE t SET v = v + 1 WHERE k = 1");
    if (r.ok()) {
      MustExec(*s2, "COMMIT");
      commits++;
    } else {
      EXPECT_TRUE(r.status().IsDeadlock()) << r.status().ToString();
      deadlocks++;
      MustExec(*s2, "ROLLBACK");
    }
  });
  sim_.Run();
  EXPECT_EQ(deadlocks, 1);
  EXPECT_EQ(commits, 1);
  sim_.Shutdown();
}

TEST_F(EngineTest, PreparedTransactionsSurviveCrash) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint, v bigint)");
    MustExec(*s, "BEGIN");
    MustExec(*s, "INSERT INTO t VALUES (1, 1)");
    MustExec(*s, "PREPARE TRANSACTION 'gid_1'");
    // Not visible yet.
    QueryResult r = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    // Crash and restart: the prepared transaction survives.
    node_.Crash();
    node_.Restart();
    auto s2 = node_.OpenSession();
    auto gids = node_.txns().PreparedGids();
    ASSERT_EQ(gids.size(), 1u);
    EXPECT_EQ(gids[0], "gid_1");
    MustExec(*s2, "COMMIT PREPARED 'gid_1'");
    r = MustExec(*s2, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 1);
  });
}

TEST_F(EngineTest, PreparedRollback) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint)");
    MustExec(*s, "BEGIN");
    MustExec(*s, "INSERT INTO t VALUES (1)");
    MustExec(*s, "PREPARE TRANSACTION 'g2'");
    MustExec(*s, "ROLLBACK PREPARED 'g2'");
    QueryResult r = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    auto missing = s->Execute("COMMIT PREPARED 'g2'");
    EXPECT_FALSE(missing.ok());
  });
}

TEST_F(EngineTest, CopyInAndDefaults) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s,
             "CREATE TABLE ev (id bigint, ts timestamp, data jsonb, "
             "note text DEFAULT 'none')");
    auto r = s->CopyIn("ev", {"id", "ts", "data"},
                       {{"1", "2020-02-01 10:00:00", "{\"a\":1}"},
                        {"2", "2020-02-01 11:00:00", "{\"b\":[1,2]}"},
                        {"3", "2020-02-01 12:00:00", "\\N"}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows_affected, 3);
    QueryResult q = MustExec(
        *s, "SELECT count(*) FROM ev WHERE jsonb_typeof(data->'b') = 'array'");
    EXPECT_EQ(q.rows[0][0].int_value(), 1);
    q = MustExec(*s, "SELECT count(*) FROM ev WHERE data IS NULL");
    EXPECT_EQ(q.rows[0][0].int_value(), 1);
  });
}

TEST_F(EngineTest, ColumnarTableScansAndRestrictions) {
  RunSim([&] {
    auto s = node_.OpenSession();
    s->SetVar("citusx.default_table_access_method", "columnar");
    MustExec(*s, "CREATE TABLE facts (k bigint, v bigint, label text)");
    s->SetVar("citusx.default_table_access_method", "");
    for (int i = 0; i < 100; i++) {
      MustExec(*s, StrFormat("INSERT INTO facts VALUES (%d, %d, 'x')", i, i * 2));
    }
    QueryResult r = MustExec(*s, "SELECT sum(v) FROM facts WHERE k < 10");
    EXPECT_EQ(r.rows[0][0].int_value(), 90);
    auto up = s->Execute("UPDATE facts SET v = 0 WHERE k = 1");
    EXPECT_FALSE(up.ok());
    EXPECT_EQ(up.status().code(), StatusCode::kNotSupported);
    auto del = s->Execute("DELETE FROM facts WHERE k = 1");
    EXPECT_FALSE(del.ok());
  });
}

TEST_F(EngineTest, VacuumReclaimsDeadVersions) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s, "INSERT INTO t VALUES (1, 0)");
    for (int i = 0; i < 50; i++) {
      MustExec(*s, "UPDATE t SET v = v + 1 WHERE k = 1");
    }
    TableInfo* t = node_.catalog().Find("t");
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->heap->dead_versions(), 50);
    int64_t reclaimed =
        t->heap->Vacuum(node_.txns().OldestActive(), node_.txns());
    EXPECT_GE(reclaimed, 50);
    QueryResult r = MustExec(*s, "SELECT v FROM t WHERE k = 1");
    EXPECT_EQ(r.rows[0][0].int_value(), 50);
  });
}

TEST_F(EngineTest, BufferPoolMemoryPressureCausesIo) {
  // A table larger than the buffer pool causes misses on repeated scans;
  // a smaller table does not.
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE big (k bigint, pad text)");
    std::string pad(1000, 'x');
    // ~64MB pool; insert ~100MB of rows (logical accounting).
    int rows = 100000;
    for (int i = 0; i < rows; i++) {
      auto st = s->CopyIn("big", {},
                          {{std::to_string(i), pad}});
      ASSERT_TRUE(st.ok());
      if (i == 0) break;  // CopyIn per row is slow; bulk the rest
    }
    std::vector<std::vector<std::string>> bulk;
    for (int i = 1; i < rows; i++) bulk.push_back({std::to_string(i), pad});
    ASSERT_TRUE(s->CopyIn("big", {}, bulk).ok());
    int64_t misses_before = node_.buffer_pool().misses();
    MustExec(*s, "SELECT count(*) FROM big");
    int64_t misses_scan1 = node_.buffer_pool().misses() - misses_before;
    EXPECT_GT(misses_scan1, 1000);  // thrashing: most blocks not resident
    MustExec(*s, "SELECT count(*) FROM big");
    int64_t misses_scan2 = node_.buffer_pool().misses() - misses_before -
                           misses_scan1;
    EXPECT_GT(misses_scan2, 1000);  // still thrashing (LRU)
  });
}

TEST_F(EngineTest, ForUpdateLocksRows) {
  auto s0 = node_.OpenSession();
  auto s1 = node_.OpenSession();
  auto s2 = node_.OpenSession();
  sim_.Spawn("setup", [&] {
    MustExec(*s0, "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s0, "INSERT INTO t VALUES (1, 10)");
  });
  sim_.Run();
  sim::Time update_done_at = -1;
  sim_.Spawn("locker", [&] {
    MustExec(*s1, "BEGIN");
    MustExec(*s1, "SELECT * FROM t WHERE k = 1 FOR UPDATE");
    sim_.WaitFor(50 * sim::kMillisecond);
    MustExec(*s1, "COMMIT");
  });
  sim_.Spawn("updater", [&] {
    sim_.WaitFor(sim::kMillisecond);
    MustExec(*s2, "UPDATE t SET v = 20 WHERE k = 1");
    update_done_at = sim_.now();
  });
  sim_.Run();
  EXPECT_GE(update_done_at, 50 * sim::kMillisecond);
  sim_.Shutdown();
}

TEST_F(EngineTest, InsertSelectLocal) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE raw (day bigint, n bigint)");
    MustExec(*s, "CREATE TABLE rollup (day bigint, total bigint)");
    MustExec(*s, "INSERT INTO raw VALUES (1, 10), (1, 20), (2, 5)");
    MustExec(*s,
             "INSERT INTO rollup SELECT day, sum(n) FROM raw GROUP BY day");
    QueryResult r = MustExec(*s, "SELECT total FROM rollup ORDER BY day");
    ASSERT_EQ(r.rows.size(), 2u);
    EXPECT_EQ(r.rows[0][0].int_value(), 30);
    EXPECT_EQ(r.rows[1][0].int_value(), 5);
  });
}

TEST_F(EngineTest, TruncateAndDrop) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE t (k bigint PRIMARY KEY)");
    MustExec(*s, "INSERT INTO t VALUES (1), (2)");
    MustExec(*s, "TRUNCATE t");
    QueryResult r = MustExec(*s, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    // Insert after truncate works (indexes truncated too).
    MustExec(*s, "INSERT INTO t VALUES (1)");
    MustExec(*s, "DROP TABLE t");
    auto gone = s->Execute("SELECT * FROM t");
    EXPECT_FALSE(gone.ok());
    MustExec(*s, "DROP TABLE IF EXISTS t");
  });
}

TEST_F(EngineTest, CaseInsensitiveKeywordsAndParams) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "create table T (K bigint, V text)");
    MustExec(*s, "insert into t values (1, 'x')");
    auto r = s->Execute("SELECT v FROM t WHERE k = $1", {Datum::Int8(1)});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].text_value(), "x");
  });
}

}  // namespace
}  // namespace citusx::engine
