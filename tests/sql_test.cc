// Unit tests for the SQL layer: datum, json, lexer, parser, deparser, eval.
#include <gtest/gtest.h>

#include "sql/datum.h"
#include "sql/deparser.h"
#include "sql/eval.h"
#include "sql/json.h"
#include "sql/parser.h"

namespace citusx::sql {
namespace {

// ---- Datum ----

TEST(Datum, NullHandling) {
  Datum n = Datum::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(Datum::Equal(n, n));
  EXPECT_EQ(Datum::Compare(n, Datum::Int8(1)), 1);  // NULLs sort last
  EXPECT_EQ(Datum::Compare(Datum::Int8(1), n), -1);
}

TEST(Datum, NumericCrossTypeCompare) {
  EXPECT_EQ(Datum::Compare(Datum::Int4(5), Datum::Int8(5)), 0);
  EXPECT_EQ(Datum::Compare(Datum::Int8(5), Datum::Float8(5.5)), -1);
  EXPECT_EQ(Datum::Compare(Datum::Float8(6.0), Datum::Int4(5)), 1);
}

TEST(Datum, TextCompare) {
  EXPECT_LT(Datum::Compare(Datum::Text("abc"), Datum::Text("abd")), 0);
  EXPECT_TRUE(Datum::Equal(Datum::Text("x"), Datum::Text("x")));
}

TEST(Datum, SqlLiteralRoundTrip) {
  // Every ToSqlLiteral output must re-parse to an equal value.
  std::vector<Datum> values = {
      Datum::Null(),
      Datum::Bool(true),
      Datum::Int8(-42),
      Datum::Float8(3.25),
      Datum::Text("it's"),
      Datum::Date(CivilToDays(2020, 2, 1)),
      Datum::Timestamp(ParseTimestamp("2021-06-20 12:34:56").value()),
  };
  for (const auto& v : values) {
    auto expr = ParseExpression(v.ToSqlLiteral());
    ASSERT_TRUE(expr.ok()) << v.ToSqlLiteral() << ": "
                           << expr.status().ToString();
    EvalContext ctx;
    auto result = Eval(**expr, ctx);
    ASSERT_TRUE(result.ok());
    if (v.is_null()) {
      EXPECT_TRUE(result->is_null());
    } else {
      EXPECT_EQ(Datum::Compare(v, *result), 0) << v.ToSqlLiteral();
    }
  }
}

TEST(Datum, DateMath) {
  int64_t d = CivilToDays(2000, 1, 1);
  EXPECT_EQ(d, 0);
  EXPECT_EQ(FormatDate(CivilToDays(2021, 6, 20)), "2021-06-20");
  int y, m, day;
  DaysToCivil(CivilToDays(2024, 2, 29), &y, &m, &day);
  EXPECT_EQ(y, 2024);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(day, 29);
  EXPECT_EQ(ParseDate("1998-12-01").value(),
            CivilToDays(1998, 12, 1));
}

TEST(Datum, CastMatrix) {
  EXPECT_EQ(Datum::Int8(42).CastTo(TypeId::kText)->text_value(), "42");
  EXPECT_EQ(Datum::Text("17").CastTo(TypeId::kInt8)->int_value(), 17);
  EXPECT_EQ(Datum::Text("1.5").CastTo(TypeId::kFloat8)->float_value(), 1.5);
  EXPECT_EQ(Datum::Text("2020-02-01")
                .CastTo(TypeId::kDate)
                ->int_value(),
            CivilToDays(2020, 2, 1));
  // timestamp -> date truncates
  Datum ts = Datum::Timestamp(ParseTimestamp("2020-02-01 23:59:59").value());
  EXPECT_EQ(ts.CastTo(TypeId::kDate)->int_value(), CivilToDays(2020, 2, 1));
  EXPECT_FALSE(Datum::Jsonb(nullptr).CastTo(TypeId::kInt8).ok());
}

TEST(Datum, PartitionHashStability) {
  EXPECT_EQ(Datum::Int8(123).PartitionHash(), Datum::Int8(123).PartitionHash());
  EXPECT_EQ(Datum::Text("abc").PartitionHash(),
            Datum::Text("abc").PartitionHash());
  EXPECT_NE(Datum::Int8(1).PartitionHash(), Datum::Int8(2).PartitionHash());
}

// ---- Json ----

TEST(Json, ParseAndSerialize) {
  auto j = Json::Parse(R"({"a": 1, "b": [true, null, "x\"y"], "c": {"d": 2.5}})");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->GetField("a")->number_value(), 1);
  EXPECT_EQ((*j)->GetField("b")->array_size(), 3);
  EXPECT_EQ((*j)->GetField("b")->GetElement(2)->string_value(), "x\"y");
  // Round trip.
  auto j2 = Json::Parse((*j)->ToString());
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ((*j)->ToString(), (*j2)->ToString());
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
}

TEST(Json, PathQuery) {
  auto j = Json::Parse(
      R"({"payload": {"commits": [{"message": "m1"}, {"message": "m2"}]}})");
  ASSERT_TRUE(j.ok());
  auto matches = Json::PathQuery(*j, "$.payload.commits[*].message");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0]->string_value(), "m1");
  EXPECT_EQ(matches[1]->string_value(), "m2");
  EXPECT_TRUE(Json::PathQuery(*j, "$.missing.path").empty());
  auto idx = Json::PathQuery(*j, "$.payload.commits[1].message");
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0]->string_value(), "m2");
}

// ---- Parser ----

Statement MustParse(const std::string& sql) {
  auto r = Parse(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Statement{};
}

TEST(Parser, SimpleSelect) {
  Statement s = MustParse("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(s.kind, Statement::Kind::kSelect);
  EXPECT_EQ(s.select->targets.size(), 2u);
  ASSERT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0]->name, "t");
  ASSERT_NE(s.select->where, nullptr);
}

TEST(Parser, SelectWithEverything) {
  Statement s = MustParse(
      "SELECT DISTINCT t.a AS x, count(*), sum(b + 1) total "
      "FROM t JOIN u ON t.id = u.id LEFT JOIN v ON v.k = t.k "
      "WHERE t.a > 5 AND u.name LIKE 'ab%' "
      "GROUP BY t.a HAVING count(*) > 2 "
      "ORDER BY 2 DESC, x ASC LIMIT 10 OFFSET 5");
  ASSERT_EQ(s.kind, Statement::Kind::kSelect);
  EXPECT_TRUE(s.select->distinct);
  EXPECT_EQ(s.select->targets.size(), 3u);
  EXPECT_EQ(s.select->targets[2].alias, "total");
  EXPECT_EQ(s.select->group_by.size(), 1u);
  ASSERT_NE(s.select->having, nullptr);
  EXPECT_EQ(s.select->order_by.size(), 2u);
  EXPECT_TRUE(s.select->order_by[0].desc);
}

TEST(Parser, SubqueryInFrom) {
  Statement s = MustParse(
      "SELECT avg(device_avg) FROM ("
      "SELECT deviceid, avg(metric) AS device_avg FROM reports "
      "GROUP BY deviceid) AS subq");
  ASSERT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0]->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(s.select->from[0]->alias, "subq");
}

TEST(Parser, InsertForms) {
  Statement v = MustParse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y') ON CONFLICT DO NOTHING");
  ASSERT_EQ(v.kind, Statement::Kind::kInsert);
  EXPECT_EQ(v.insert->values.size(), 2u);
  EXPECT_TRUE(v.insert->on_conflict_do_nothing);

  Statement is = MustParse("INSERT INTO rollup SELECT a, count(*) FROM t GROUP BY a");
  ASSERT_EQ(is.kind, Statement::Kind::kInsert);
  ASSERT_NE(is.insert->select, nullptr);
}

TEST(Parser, UpdateDelete) {
  Statement u = MustParse("UPDATE t SET v = v + 1, w = 2 WHERE key = $1");
  ASSERT_EQ(u.kind, Statement::Kind::kUpdate);
  EXPECT_EQ(u.update->sets.size(), 2u);
  Statement d = MustParse("DELETE FROM t WHERE a IN (1, 2, 3)");
  ASSERT_EQ(d.kind, Statement::Kind::kDelete);
}

TEST(Parser, CreateTable) {
  Statement s = MustParse(
      "CREATE TABLE IF NOT EXISTS orders ("
      "o_id bigint PRIMARY KEY, o_w_id int NOT NULL, "
      "o_entry_d timestamp, data jsonb, total double precision, "
      "name varchar(24) DEFAULT 'x')");
  ASSERT_EQ(s.kind, Statement::Kind::kCreateTable);
  const auto& ct = *s.create_table;
  EXPECT_TRUE(ct.if_not_exists);
  EXPECT_EQ(ct.schema.columns.size(), 6u);
  EXPECT_EQ(ct.schema.columns[0].type, TypeId::kInt8);
  EXPECT_TRUE(ct.schema.columns[0].primary_key);
  EXPECT_EQ(ct.schema.columns[2].type, TypeId::kTimestamp);
  EXPECT_EQ(ct.schema.columns[3].type, TypeId::kJsonb);
  EXPECT_EQ(ct.schema.columns[4].type, TypeId::kFloat8);
  EXPECT_EQ(ct.primary_key, std::vector<std::string>{"o_id"});
}

TEST(Parser, CompositePrimaryKey) {
  Statement s = MustParse(
      "CREATE TABLE t (a int, b int, c text, PRIMARY KEY (a, b))");
  EXPECT_EQ(s.create_table->primary_key,
            (std::vector<std::string>{"a", "b"}));
}

TEST(Parser, CreateIndex) {
  Statement s = MustParse("CREATE UNIQUE INDEX idx ON t (a, b)");
  EXPECT_TRUE(s.create_index->unique);
  EXPECT_EQ(s.create_index->columns.size(), 2u);

  Statement g = MustParse(
      "CREATE INDEX text_idx ON github_events USING gin "
      "((jsonb_path_query_array(data, '$.payload.commits[*].message')::text) "
      "gin_trgm_ops)");
  EXPECT_EQ(g.create_index->method, IndexMethod::kGinTrgm);
  ASSERT_NE(g.create_index->expression, nullptr);
}

TEST(Parser, TxnStatements) {
  EXPECT_EQ(MustParse("BEGIN").txn->op, TxnOp::kBegin);
  EXPECT_EQ(MustParse("COMMIT").txn->op, TxnOp::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK").txn->op, TxnOp::kRollback);
  Statement p = MustParse("PREPARE TRANSACTION 'citus_0_12'");
  EXPECT_EQ(p.txn->op, TxnOp::kPrepare);
  EXPECT_EQ(p.txn->gid, "citus_0_12");
  EXPECT_EQ(MustParse("COMMIT PREPARED 'g1'").txn->op, TxnOp::kCommitPrepared);
  EXPECT_EQ(MustParse("ROLLBACK PREPARED 'g1'").txn->op,
            TxnOp::kRollbackPrepared);
}

TEST(Parser, SetAndCall) {
  Statement s = MustParse("SET citus.distributed_txid = '42'");
  EXPECT_EQ(s.set->name, "citus.distributed_txid");
  EXPECT_EQ(s.set->value, "42");
  Statement c = MustParse("CALL new_order(1, 2, 3)");
  EXPECT_EQ(c.call->procedure, "new_order");
  EXPECT_EQ(c.call->args.size(), 3u);
}

TEST(Parser, CopyStatement) {
  Statement s = MustParse("COPY t (a, b) FROM STDIN");
  EXPECT_EQ(s.copy->table, "t");
  EXPECT_EQ(s.copy->columns.size(), 2u);
}

TEST(Parser, DateLiteralsAndIntervals) {
  Statement s = MustParse(
      "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - "
      "INTERVAL '90' DAY");
  ASSERT_NE(s.select->where, nullptr);
  Statement m = MustParse(
      "SELECT * FROM orders WHERE o_orderdate < DATE '1995-01-01' + "
      "INTERVAL '3' MONTH");
  ASSERT_NE(m.select->where, nullptr);
}

TEST(Parser, JsonOperators) {
  Statement s = MustParse(
      "SELECT (data->>'created_at')::date, "
      "sum(jsonb_array_length(data->'payload'->'commits')) "
      "FROM github_events WHERE jsonb_path_query_array(data, "
      "'$.payload.commits[*].message')::text ILIKE '%postgres%' "
      "GROUP BY 1 ORDER BY 1 ASC");
  EXPECT_EQ(s.select->targets.size(), 2u);
}

TEST(Parser, NamedUdfArguments) {
  Statement s = MustParse(
      "SELECT create_distributed_table('other', 'k', colocate_with := 'my')");
  ASSERT_EQ(s.select->targets.size(), 1u);
  const Expr& f = *s.select->targets[0].expr;
  EXPECT_EQ(f.kind, ExprKind::kFunc);
  EXPECT_EQ(f.args.size(), 4u);  // 2 positional + marker + value
}

TEST(Parser, Errors) {
  EXPECT_FALSE(Parse("SELEC 1").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("INSERT INTO t").ok());
  EXPECT_FALSE(Parse("SELECT 'unterminated").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE EXISTS (SELECT 1)").ok());
  EXPECT_FALSE(Parse("SELECT (SELECT 1)").ok());
}

TEST(Parser, CaseExpression) {
  Statement s = MustParse(
      "SELECT sum(CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) "
      "FROM orders");
  const Expr& agg = *s.select->targets[0].expr;
  EXPECT_EQ(agg.kind, ExprKind::kAgg);
  EXPECT_EQ(agg.args[0]->kind, ExprKind::kCase);
}

TEST(Parser, BetweenRewrite) {
  Statement s = MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 10");
  // BETWEEN becomes (a >= 1 AND a <= 10).
  EXPECT_EQ(s.select->where->kind, ExprKind::kBinary);
  EXPECT_EQ(s.select->where->bin_op, BinOp::kAnd);
}

// ---- Deparser round-trip ----

class DeparseRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DeparseRoundTrip, ParseDeparseParse) {
  const std::string& sql = GetParam();
  auto s1 = Parse(sql);
  ASSERT_TRUE(s1.ok()) << sql << ": " << s1.status().ToString();
  std::string text1 = DeparseStatement(*s1);
  auto s2 = Parse(text1);
  ASSERT_TRUE(s2.ok()) << text1 << ": " << s2.status().ToString();
  std::string text2 = DeparseStatement(*s2);
  EXPECT_EQ(text1, text2) << "deparse not a fixed point for: " << sql;
}

INSTANTIATE_TEST_SUITE_P(
    Statements, DeparseRoundTrip,
    ::testing::Values(
        "SELECT 1",
        "SELECT a, b FROM t WHERE a = 1 AND b <> 'x'",
        "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 1",
        "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON c.x = a.x",
        "SELECT sum(x) FROM (SELECT y AS x FROM u) AS sub",
        "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
        "SELECT a FROM t WHERE b IN (1, 2, 3) OR c IS NOT NULL",
        "SELECT a::text, CAST(b AS bigint) FROM t",
        "SELECT data->'payload'->>'size' FROM events",
        "SELECT * FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2",
        "SELECT * FROM t WHERE name ILIKE '%post%' FOR UPDATE",
        "INSERT INTO t (a, b) VALUES (1, 'x')",
        "INSERT INTO r SELECT a, count(*) FROM t GROUP BY a",
        "UPDATE t SET v = v + 1 WHERE k = 5",
        "DELETE FROM t WHERE k = 5",
        "CREATE TABLE t (a bigint, b text, PRIMARY KEY (a))",
        "CREATE INDEX i ON t (a, b)",
        "DROP TABLE IF EXISTS t",
        "TRUNCATE a, b",
        "COPY t (a, b) FROM STDIN",
        "BEGIN", "COMMIT", "ROLLBACK",
        "PREPARE TRANSACTION 'gid_1'",
        "COMMIT PREPARED 'gid_1'",
        "SET citus.txid = '9'",
        "CALL payment(1, 2)"));

TEST(Deparser, TableMapRewritesShardNames) {
  auto s = Parse("SELECT o.a FROM orders o JOIN items ON items.id = o.id");
  ASSERT_TRUE(s.ok());
  std::map<std::string, std::string> map = {{"orders", "orders_102008"},
                                            {"items", "items_102012"}};
  DeparseOptions opts;
  opts.table_map = &map;
  std::string text = DeparseStatement(*s, opts);
  EXPECT_NE(text.find("orders_102008"), std::string::npos);
  EXPECT_NE(text.find("items_102012 AS items"), std::string::npos);
}

TEST(Deparser, ParamSubstitution) {
  auto s = Parse("SELECT * FROM t WHERE k = $1 AND v > $2");
  ASSERT_TRUE(s.ok());
  std::vector<Datum> params = {Datum::Text("o'brien"), Datum::Int8(7)};
  DeparseOptions opts;
  opts.params = &params;
  std::string text = DeparseStatement(*s, opts);
  EXPECT_NE(text.find("'o''brien'"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

// ---- Eval ----

Datum EvalText(const std::string& expr_text,
               const std::vector<Datum>* params = nullptr) {
  auto e = ParseExpression(expr_text);
  EXPECT_TRUE(e.ok()) << expr_text << ": " << e.status().ToString();
  EvalContext ctx;
  ctx.params = params;
  auto v = Eval(**e, ctx);
  EXPECT_TRUE(v.ok()) << expr_text << ": " << v.status().ToString();
  return v.ok() ? *v : Datum::Null();
}

TEST(Eval, Arithmetic) {
  EXPECT_EQ(EvalText("1 + 2 * 3").int_value(), 7);
  EXPECT_EQ(EvalText("(1 + 2) * 3").int_value(), 9);
  EXPECT_EQ(EvalText("7 / 2").int_value(), 3);  // int division
  EXPECT_EQ(EvalText("7.0 / 2").float_value(), 3.5);
  EXPECT_EQ(EvalText("7 % 3").int_value(), 1);
  EXPECT_EQ(EvalText("-5 + 3").int_value(), -2);
}

TEST(Eval, ThreeValuedLogic) {
  EXPECT_TRUE(EvalText("NULL AND FALSE").type() == TypeId::kBool);
  EXPECT_FALSE(EvalText("NULL AND FALSE").bool_value());  // false
  EXPECT_TRUE(EvalText("NULL OR TRUE").bool_value());
  EXPECT_TRUE(EvalText("NULL OR FALSE").is_null());
  EXPECT_TRUE(EvalText("NULL AND TRUE").is_null());
  EXPECT_TRUE(EvalText("NOT NULL").is_null());
  EXPECT_TRUE(EvalText("1 = NULL").is_null());
}

TEST(Eval, Comparisons) {
  EXPECT_TRUE(EvalText("1 < 2").bool_value());
  EXPECT_TRUE(EvalText("'abc' < 'abd'").bool_value());
  EXPECT_TRUE(EvalText("2 BETWEEN 1 AND 3").bool_value());
  EXPECT_TRUE(EvalText("2 IN (1, 2, 3)").bool_value());
  EXPECT_FALSE(EvalText("5 IN (1, 2, 3)").bool_value());
  EXPECT_TRUE(EvalText("5 NOT IN (1, 2, 3)").bool_value());
  EXPECT_TRUE(EvalText("5 IN (1, NULL)").is_null());
  EXPECT_TRUE(EvalText("NULL IS NULL").bool_value());
  EXPECT_FALSE(EvalText("1 IS NULL").bool_value());
}

TEST(Eval, LikePatterns) {
  EXPECT_TRUE(LikeMatch("postgres", "post%", false));
  EXPECT_TRUE(LikeMatch("postgres", "%gres", false));
  EXPECT_TRUE(LikeMatch("postgres", "%stg%", false));
  EXPECT_TRUE(LikeMatch("postgres", "p_stgres", false));
  EXPECT_FALSE(LikeMatch("postgres", "P%", false));
  EXPECT_TRUE(LikeMatch("PostgreSQL rocks", "%postgres%", true));  // ILIKE
  EXPECT_TRUE(LikeMatch("", "%", false));
  EXPECT_FALSE(LikeMatch("", "_", false));
  EXPECT_TRUE(LikeMatch("abc", "abc", false));
  EXPECT_TRUE(LikeMatch("a%c", "a%c", false));
  EXPECT_TRUE(EvalText("'PostGres is fun' ILIKE '%postgres%'").bool_value());
}

TEST(Eval, StringFunctions) {
  EXPECT_EQ(EvalText("lower('ABC')").text_value(), "abc");
  EXPECT_EQ(EvalText("upper('abc')").text_value(), "ABC");
  EXPECT_EQ(EvalText("length('hello')").int_value(), 5);
  EXPECT_EQ(EvalText("'a' || 'b' || 'c'").text_value(), "abc");
  EXPECT_EQ(EvalText("substring('hello', 2, 3)").text_value(), "ell");
  EXPECT_EQ(EvalText("coalesce(NULL, NULL, 3)").int_value(), 3);
  EXPECT_EQ(EvalText("greatest(1, 5, 3)").int_value(), 5);
  EXPECT_EQ(EvalText("least(2, 5, 3)").int_value(), 2);
  EXPECT_EQ(EvalText("md5('x')").text_value().size(), 32u);
}

TEST(Eval, DateFunctions) {
  EXPECT_EQ(EvalText("DATE '2020-03-15' - INTERVAL '14' DAY").int_value(),
            CivilToDays(2020, 3, 1));
  EXPECT_EQ(EvalText("DATE '1995-01-01' + INTERVAL '3' MONTH").int_value(),
            CivilToDays(1995, 4, 1));
  EXPECT_EQ(EvalText("DATE '1994-01-01' + INTERVAL '1' YEAR").int_value(),
            CivilToDays(1995, 1, 1));
  EXPECT_EQ(EvalText("extract(year FROM DATE '2021-06-20')").int_value(), 2021);
  EXPECT_EQ(EvalText("extract(month FROM DATE '2021-06-20')").int_value(), 6);
  EXPECT_EQ(EvalText("DATE '2020-01-31' - DATE '2020-01-01'").int_value(), 30);
  EXPECT_EQ(EvalText("date_trunc('month', DATE '2021-06-20')").int_value(),
            CivilToDays(2021, 6, 1));
}

TEST(Eval, JsonExpressions) {
  auto j = Json::Parse(
      R"({"created_at": "2020-02-01T10:00:00Z",
          "payload": {"commits": [{"message": "fix postgres bug"},
                                   {"message": "other"}]}})");
  ASSERT_TRUE(j.ok());
  Row row = {Datum::Jsonb(*j)};
  auto e = ParseExpression(
      "jsonb_array_length(data->'payload'->'commits')");
  ASSERT_TRUE(e.ok());
  // Bind "data" to slot 0 by hand.
  WalkExprMut(*e, [](Expr& x) {
    if (x.kind == ExprKind::kColumnRef) x.slot = 0;
  });
  EvalContext ctx;
  ctx.row = &row;
  EXPECT_EQ(Eval(**e, ctx)->int_value(), 2);

  auto e2 = ParseExpression("(data->>'created_at')::date");
  ASSERT_TRUE(e2.ok());
  WalkExprMut(*e2, [](Expr& x) {
    if (x.kind == ExprKind::kColumnRef) x.slot = 0;
  });
  EXPECT_EQ(Eval(**e2, ctx)->int_value(), CivilToDays(2020, 2, 1));

  auto e3 = ParseExpression(
      "jsonb_path_query_array(data, '$.payload.commits[*].message')::text "
      "ILIKE '%postgres%'");
  ASSERT_TRUE(e3.ok());
  WalkExprMut(*e3, [](Expr& x) {
    if (x.kind == ExprKind::kColumnRef) x.slot = 0;
  });
  EXPECT_TRUE(Eval(**e3, ctx)->bool_value());
}

TEST(Eval, Params) {
  std::vector<Datum> params = {Datum::Int8(10), Datum::Text("x")};
  EXPECT_EQ(EvalText("$1 * 2", &params).int_value(), 20);
  EXPECT_EQ(EvalText("$2 || '!'", &params).text_value(), "x!");
  auto e = ParseExpression("$3");
  ASSERT_TRUE(e.ok());
  EvalContext ctx;
  ctx.params = &params;
  EXPECT_FALSE(Eval(**e, ctx).ok());  // missing param
}

TEST(Eval, CaseEvaluation) {
  EXPECT_EQ(EvalText("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END")
                .text_value(),
            "b");
  EXPECT_TRUE(EvalText("CASE WHEN FALSE THEN 1 END").is_null());
  EXPECT_EQ(EvalText("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
                .text_value(),
            "two");
}

TEST(Eval, DivisionByZero) {
  auto e = ParseExpression("1 / 0");
  ASSERT_TRUE(e.ok());
  EvalContext ctx;
  EXPECT_FALSE(Eval(**e, ctx).ok());
}

}  // namespace
}  // namespace citusx::sql
