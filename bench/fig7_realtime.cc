// Figure 7: real-time analytics microbenchmarks over GitHub-archive-style
// JSON events with a trigram GIN index on commit messages.
//
//   (a) single-session COPY of one day of events into the indexed table
//   (b) dashboard query: commits mentioning "postgres" per day (ILIKE)
//   (c) INSERT..SELECT transformation extracting commits from push events
//
// Expected shapes (paper): COPY speedup saturates around 4+1 (the single
// COPY stream is bottlenecked on one coordinator core); the dashboard query
// and INSERT..SELECT keep scaling with workers.
#include "bench_common.h"
#include "workload/gharchive.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {
constexpr int64_t kBaseEvents = 60000;  // pre-loaded "January"
constexpr int64_t kDayEvents = 15000;   // the appended day (Figure 7a)
}  // namespace

int main() {
  PrintHeader(
      "Real-time analytics microbenchmarks (GitHub archive, GIN index)",
      "Figure 7(a,b,c)");
  sim::CostModel cost;
  cost.buffer_pool_bytes = 32LL << 20;

  std::printf("%-12s %14s %16s %18s\n", "setup", "COPY (s)",
              "dashboard (ms)", "INSERT..SELECT (s)");
  for (const Setup& setup : PaperSetups()) {
    GhArchiveConfig config;
    config.use_citus = setup.install_citus;
    WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                    citus::Deployment& deploy) {
      double copy_s = 0, dash_ms = 0, transform_s = 0;
      MustRun(sim, [&]() -> Status {
        auto conn_r = deploy.Connect();
        if (!conn_r.ok()) return conn_r.status();
        net::Connection& conn = **conn_r;
        CITUSX_RETURN_IF_ERROR(GhCreateSchema(conn, config));
        CITUSX_RETURN_IF_ERROR(GhCreateCommitsTable(conn, config));
        Rng rng(2020);
        // Pre-load January (builds a large index).
        for (int day = 1; day <= 5; day++) {
          auto rows =
              GhGenerateEvents(rng, config, kBaseEvents / 5, 2020, 1, day);
          CITUSX_RETURN_IF_ERROR(
              conn.CopyIn("github_events", {}, std::move(rows)).status());
        }
        // (a) Append the first day of February with a single COPY.
        auto day_rows = GhGenerateEvents(rng, config, kDayEvents, 2020, 2, 1);
        sim::Time t0 = deploy.sim()->now();
        CITUSX_RETURN_IF_ERROR(
            conn.CopyIn("github_events", {}, std::move(day_rows)).status());
        copy_s = static_cast<double>(deploy.sim()->now() - t0) / 1e9;
        // (b) Dashboard query: average of 5 runs, excluding the first
        // (cache warmup), exactly like §4.2.
        CITUSX_RETURN_IF_ERROR(conn.Query(GhDashboardQuery()).status());
        sim::Time total = 0;
        for (int run = 0; run < 5; run++) {
          sim::Time q0 = deploy.sim()->now();
          CITUSX_RETURN_IF_ERROR(conn.Query(GhDashboardQuery()).status());
          total += deploy.sim()->now() - q0;
        }
        dash_ms = static_cast<double>(total) / 5e6;
        // (c) INSERT..SELECT transformation.
        sim::Time x0 = deploy.sim()->now();
        CITUSX_RETURN_IF_ERROR(conn.Query(GhTransformQuery()).status());
        transform_s = static_cast<double>(deploy.sim()->now() - x0) / 1e9;
        return Status::OK();
      });
      std::printf("%-12s %14.2f %16.1f %18.2f\n", setup.name.c_str(), copy_s,
                  dash_ms, transform_s);
    });
  }
  std::printf("\nNote: COPY is one session (one coordinator core parses); the "
              "dashboard query\nuses the trigram index; INSERT..SELECT is "
              "co-located and runs per shard pair.\n");
  return 0;
}
