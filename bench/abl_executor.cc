// Ablation B: the adaptive executor's "slow start" (§3.6.1).
//
// Slow start trades parallelism for connection cost: cheap multi-shard
// queries should finish on few connections (opening more would cost more
// than it saves), while expensive analytical queries should ramp up to many
// connections. This bench runs a multi-shard query whose per-task cost is
// swept from cheap to expensive, with slow start on and off, and reports
// latency and connections opened.
#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;

namespace {

// Rows per shard controls per-task cost (sequential scan per task).
Status SetupTable(citus::Deployment& deploy, int64_t rows) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE sweep (k bigint, pad text)").status());
  CITUSX_RETURN_IF_ERROR(
      conn.Query("SELECT create_distributed_table('sweep', 'k')").status());
  std::vector<std::vector<std::string>> batch;
  for (int64_t i = 0; i < rows; i++) {
    batch.push_back({std::to_string(i), std::string(100, 'x')});
    if (batch.size() == 10000) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn("sweep", {}, std::move(batch)).status());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    CITUSX_RETURN_IF_ERROR(conn.CopyIn("sweep", {}, std::move(batch)).status());
  }
  return Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Ablation: adaptive executor slow start (§3.6.1)",
              "design choice from DESIGN.md");
  std::printf("%-14s %12s %18s %18s %14s\n", "rows/shard", "slow start",
              "query latency (ms)", "conns opened", "conn time (s)");
  for (int64_t total_rows : {int64_t{3200}, int64_t{64000}, int64_t{640000}}) {
    for (bool slow_start : {true, false}) {
      sim::CostModel cost;
      cost.buffer_pool_bytes = 256LL << 20;  // keep I/O out of the picture
      Setup setup{"Citus 4+1", 4, true};
      sim::Simulation sim;
      citus::DeploymentOptions options;
      options.num_workers = setup.workers;
      options.cost = cost;
      options.citus.enable_slow_start = slow_start;
      // Pipelining batches co-located tasks onto one connection, which would
      // hide the connection-open cost this ablation exists to measure.
      options.citus.enable_task_pipelining = false;
      citus::Deployment deploy(&sim, options);
      MustRun(sim, [&] { return SetupTable(deploy, total_rows); });

      double latency_ms = 0;
      int conns = 0;
      sim::Time conn_time = 0;
      MustRun(sim, [&]() -> Status {
        auto conn_r = deploy.Connect();
        if (!conn_r.ok()) return conn_r.status();
        // Warm the executor's cached connections? No: a fresh session shows
        // the connection ramp-up behaviour we want to observe.
        sim::Time t0 = sim.now();
        CITUSX_RETURN_IF_ERROR(
            (*conn_r)->Query("SELECT count(*), sum(k) FROM sweep").status());
        latency_ms = static_cast<double>(sim.now() - t0) / 1e6;
        citus::CitusExtension* ext = deploy.extension(deploy.coordinator());
        for (engine::Node* w : deploy.workers()) {
          conns += ext->outgoing_connections(w->name());
        }
        conn_time = static_cast<sim::Time>(conns) *
                    deploy.coordinator()->cost().connect_cost;
        return Status::OK();
      });
      std::printf("%-14lld %12s %18.2f %18d %14.3f\n",
                  static_cast<long long>(total_rows),
                  slow_start ? "on" : "off", latency_ms, conns,
                  static_cast<double>(conn_time) / 1e9);
      sim.Shutdown();
    }
  }
  std::printf("\nExpected: with slow start ON, cheap queries use ~1 connection "
              "per worker and expensive\nqueries ramp up; with slow start OFF "
              "every multi-shard query opens the full pool at once.\n");
  return 0;
}
