// Ablation: metadata syncing / any-node coordination (Citus MX, §3.10).
//
// A single-shard read workload (pgbench -S style, PREPARE/EXECUTE over a
// distributed key-value table) is driven against an 8-node cluster: five
// data workers hold the shards, and three shard-free nodes (the
// coordinator plus two metadata-synced workers) do nothing but plan and
// route. Two modes:
//
//   baseline  every client connects to the coordinator — the classic
//             topology where one node plans every query;
//   mx        clients are spread round robin over the 3 coordinating
//             nodes — metadata sync lets the extra two plan and route
//             queries themselves.
//
// The data tier has enough aggregate CPU that the baseline saturates on
// the single coordinator's planning/binding, which is exactly the
// resource MX triples: aggregate throughput must rise by >= 2x. The
// binary self-checks that ratio, that every coordinating node actually
// coordinated queries in MX mode, and that neither mode produced a
// single error — a stale or confused node would surface here.
//
//   abl_mx [--quick] [--json=<path>]
#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;

namespace {

struct ModeResult {
  double tps = 0;
  LatencyTriple latency;
  int64_t errors = 0;
  int64_t retryable = 0;
  // Queries coordinated per node (fast-path plans + cached-plan binds),
  // keyed by node name.
  std::vector<std::pair<std::string, int64_t>> coordinated;
};

const std::vector<std::string>& MxEndpoints() {
  static const std::vector<std::string> kEndpoints = {"coordinator", "worker6",
                                                      "worker7"};
  return kEndpoints;
}

Status LoadRows(citus::Deployment& deploy, int64_t rows) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  // Shards land on worker1..worker5 (registered before the table exists);
  // worker6/worker7 join afterwards, so metadata sync makes them full
  // coordinating peers that own no shards — pure routers, like the
  // coordinator itself.
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE kv (key bigint PRIMARY KEY, v text)").status());
  CITUSX_RETURN_IF_ERROR(
      conn.Query("SELECT create_distributed_table('kv', 'key')").status());
  CITUSX_RETURN_IF_ERROR(conn.Query("SELECT citus_add_node('worker6')").status());
  CITUSX_RETURN_IF_ERROR(conn.Query("SELECT citus_add_node('worker7')").status());
  std::vector<std::vector<std::string>> batch;
  for (int64_t i = 0; i < rows; i++) {
    batch.push_back({std::to_string(i), StrFormat("value-%lld",
                                                  static_cast<long long>(i))});
    if (batch.size() == 5000) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
  }
  return Status::OK();
}

ModeResult RunMode(bool mx, bool quick) {
  sim::CostModel cost;
  cost.net_rtt = 20 * sim::kMicrosecond;  // rack-local: planning CPU visible
  cost.buffer_pool_bytes = 256LL << 20;   // keep disk I/O out of the picture
  // Small nodes so the coordinating node saturates on planning CPU at a
  // query volume a smoke test can simulate; the scaling shape is the same
  // at 16 cores, just at ~16x the load.
  cost.cores_per_node = 1;

  sim::Simulation sim;
  citus::DeploymentOptions options;
  // Five data workers hold the shards; the two spares become shard-free
  // coordinating peers once LoadRows registers them.
  options.num_workers = 5;
  options.spare_workers = 2;
  options.cost = cost;
  citus::Deployment deploy(&sim, options);

  const int64_t rows = quick ? 2000 : 10000;
  MustRun(sim, [&] { return LoadRows(deploy, rows); });

  workload::DriverOptions dopts;
  // Enough closed-loop clients to saturate the baseline's single
  // coordinating node (planning + its local third of the shard reads).
  dopts.clients = quick ? 60 : 96;
  dopts.warmup = (quick ? 100 : 500) * sim::kMillisecond;
  dopts.duration = (quick ? 500 : 2000) * sim::kMillisecond;
  dopts.sleep_between = 0;
  if (mx) dopts.endpoints = MxEndpoints();

  std::vector<char> prepared(static_cast<size_t>(dopts.clients), 0);
  workload::DriverResult r = workload::RunDriver(
      &sim, &deploy.cluster().directory(), dopts,
      [&](net::Connection& conn, int client_id, Rng& rng) -> Status {
        if (!prepared[static_cast<size_t>(client_id)]) {
          CITUSX_RETURN_IF_ERROR(
              conn.Query("PREPARE sel (bigint) AS "
                         "SELECT v FROM kv WHERE key = $1")
                  .status());
          prepared[static_cast<size_t>(client_id)] = 1;
        }
        int64_t key = static_cast<int64_t>(rng.Next() % rows);
        return conn
            .Query(StrFormat("EXECUTE sel (%lld)",
                             static_cast<long long>(key)))
            .status();
      });

  ModeResult out;
  out.tps = r.PerSecond();
  out.latency = Percentiles(r.latency);
  out.errors = r.fatal_errors;
  out.retryable = r.retryable_errors;
  for (size_t i = 0; i < deploy.cluster().num_nodes(); i++) {
    engine::Node* node = deploy.cluster().node(i);
    const obs::Metrics& m = node->metrics();
    out.coordinated.emplace_back(node->name(),
                                 m.CounterValue("citus.planner.fast_path") +
                                     m.CounterValue("citus.plancache.hit"));
  }
  sim.Shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  PrintHeader("Ablation: metadata sync / any-node coordination (Citus MX)",
              "paper §3.10 Citus MX; single-shard read scaling");
  std::printf("%-10s %-34s %12s %10s %10s %10s\n", "mode", "endpoints", "tps",
              "p50 (ms)", "p95 (ms)", "p99 (ms)");

  BenchReport report("abl_mx");
  auto add_row = [&](const char* mode, const char* endpoints,
                     const ModeResult& m) {
    std::printf("%-10s %-34s %12.0f %10.3f %10.3f %10.3f\n", mode, endpoints,
                m.tps, m.latency.p50_ms, m.latency.p95_ms, m.latency.p99_ms);
    std::vector<sql::JsonPtr> per_node;
    for (const auto& [node, c] : m.coordinated) {
      per_node.push_back(sql::Json::MakeObject(
          {{"node", sql::Json::MakeString(node)},
           {"coordinated", sql::Json::MakeNumber(static_cast<double>(c))}}));
    }
    report.AddResult(
        {{"mode", sql::Json::MakeString(mode)},
         {"endpoints", sql::Json::MakeString(endpoints)},
         {"tps", sql::Json::MakeNumber(m.tps)},
         {"p50_ms", sql::Json::MakeNumber(m.latency.p50_ms)},
         {"p95_ms", sql::Json::MakeNumber(m.latency.p95_ms)},
         {"p99_ms", sql::Json::MakeNumber(m.latency.p99_ms)},
         {"errors", sql::Json::MakeNumber(static_cast<double>(m.errors))},
         {"retryable_errors",
          sql::Json::MakeNumber(static_cast<double>(m.retryable))},
         {"coordinated_per_node", sql::Json::MakeArray(std::move(per_node))}});
  };

  ModeResult baseline = RunMode(/*mx=*/false, args.quick);
  add_row("baseline", "coordinator", baseline);
  ModeResult mx = RunMode(/*mx=*/true, args.quick);
  add_row("mx", "coordinator,worker6,worker7", mx);

  double scaling = baseline.tps > 0 ? mx.tps / baseline.tps : 0;
  std::printf("\nAggregate read scaling (mx / baseline, 3 nodes): %.2fx\n",
              scaling);
  report.AddResult({{"scaling", sql::Json::MakeNumber(scaling)}});
  if (!report.WriteTo(args.json_path)) return 1;

  if (baseline.errors > 0 || mx.errors > 0) {
    std::fprintf(stderr,
                 "FAIL: errors (baseline=%lld mx=%lld); a stale node "
                 "answered wrong or refused unexpectedly\n",
                 static_cast<long long>(baseline.errors),
                 static_cast<long long>(mx.errors));
    return 1;
  }
  for (const std::string& endpoint : MxEndpoints()) {
    int64_t coordinated = -1;
    for (const auto& [node, c] : mx.coordinated) {
      if (node == endpoint) coordinated = c;
    }
    if (coordinated <= 0) {
      std::fprintf(stderr,
                   "FAIL: %s coordinated no queries in MX mode — "
                   "metadata sync did not enable any-node routing\n",
                   endpoint.c_str());
      return 1;
    }
  }
  if (scaling < 2.0) {
    std::fprintf(stderr, "FAIL: expected >= 2x aggregate single-shard read "
                 "throughput with 3 coordinating nodes, got %.2fx\n", scaling);
    return 1;
  }
  std::printf("PASS: 3 coordinating nodes deliver %.2fx aggregate "
              "single-shard read throughput.\n", scaling);
  return 0;
}
