// Chaos YCSB: a YCSB-style CRUD workload against Citus 4+1 while the fault
// injector crashes and restarts workers on a seeded schedule, with injected
// connection drops and a delay spike on top.
//
// The bench runs four phases over one cluster: a fault-free baseline, the
// chaos window, a recovery wait (2PC recovery + pool healing), and a
// post-recovery measurement. It then checks the chaos invariants:
//
//   1. No acked commit is lost: for every key, final value >= acked
//      increments (and <= attempted increments — nothing applied twice).
//   2. Every prepared transaction is eventually resolved: no worker holds a
//      PREPARE TRANSACTION after the recovery wait.
//   3. The cluster heals: post-recovery throughput within 20% of baseline.
//   4. No fatal (non-retryable) errors surface to clients at any point.
//
// Mix: 50% single-key reads, 30% single-key increments (autocommit,
// single-shard), 20% two-key transfers (BEGIN..COMMIT, usually cross-worker
// 2PC). Keys are uniform; transfer keys are ordered to stay deadlock-free.
//
//   chaos_ycsb [--quick] [--seed=<n>] [--json=<path>]
#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench_common.h"
#include "common/str.h"
#include "sim/fault.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {

struct PhaseResult {
  const char* phase = "";
  double tps = 0;
  LatencyTriple latency;
  int64_t retryable = 0;
  int64_t fatal = 0;
  int64_t reconnects = 0;
  std::string last_error;
};

PhaseResult Measure(const char* phase, sim::Simulation& sim,
                    citus::Deployment& deploy, const DriverOptions& opts,
                    const ClientTxn& txn) {
  DriverResult r = RunDriver(&sim, &deploy.cluster().directory(), opts, txn);
  PhaseResult out;
  out.phase = phase;
  out.tps = r.PerSecond();
  out.latency = Percentiles(r.latency);
  out.retryable = r.retryable_errors;
  out.fatal = r.fatal_errors;
  out.reconnects = r.reconnects;
  out.last_error = r.last_error;
  std::printf("%-14s %12.0f %10.3f %10.3f %10.3f %11lld %9lld\n", phase,
              out.tps, out.latency.p50_ms, out.latency.p95_ms,
              out.latency.p99_ms, static_cast<long long>(out.retryable),
              static_cast<long long>(out.fatal));
  if (out.fatal > 0) {
    std::printf("  last fatal error: %s\n", out.last_error.c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Chaos YCSB: crash/restart schedule under a CRUD workload",
              "fault-tolerance invariants; cf. paper §3.7 2PC recovery");
  std::printf("seed = %" PRIu64 "\n", args.seed);

  const int64_t kRows = args.quick ? 500 : 2000;
  const int kClients = args.quick ? 12 : 24;
  const sim::Time kWarmup = 500 * sim::kMillisecond;
  const sim::Time kBaseline = (args.quick ? 2 : 4) * sim::kSecond;
  const sim::Time kChaos = (args.quick ? 4 : 8) * sim::kSecond;
  const sim::Time kPost = (args.quick ? 2 : 4) * sim::kSecond;

  sim::CostModel cost;
  cost.buffer_pool_bytes = 256LL << 20;  // keep disk I/O out of the picture
  cost.max_connections = 600;

  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 4;
  options.cost = cost;
  // Short maintenance cadence so 2PC recovery and deferred cleanup finish
  // within the recovery-wait phase.
  options.citus.deadlock_poll_interval = 1 * sim::kSecond;
  options.citus.recovery_poll_interval = 2 * sim::kSecond;
  // Per-statement deadline on worker connections: a crashed worker costs a
  // timeout, not a hung client.
  options.citus.statement_timeout = 500 * sim::kMillisecond;
  citus::Deployment deploy(&sim, options);
  sim.faults().Reseed(args.seed);

  MustRun(sim, [&]() -> Status {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return conn_r.status();
    net::Connection& conn = **conn_r;
    CITUSX_RETURN_IF_ERROR(
        conn.Query("CREATE TABLE chaos_counters (key bigint PRIMARY KEY, "
                   "v bigint)")
            .status());
    CITUSX_RETURN_IF_ERROR(
        conn.Query("SELECT create_distributed_table('chaos_counters', 'key')")
            .status());
    std::vector<std::vector<std::string>> rows;
    for (int64_t i = 0; i < kRows; i++) {
      rows.push_back({std::to_string(i), "0"});
    }
    return conn.CopyIn("chaos_counters", {}, std::move(rows)).status();
  });

  // Per-key accounting for the acked-commit invariant. The simulation is
  // single-threaded, so plain counters are race-free.
  std::vector<int64_t> attempts(static_cast<size_t>(kRows), 0);
  std::vector<int64_t> acked(static_cast<size_t>(kRows), 0);

  ClientTxn txn = [&](net::Connection& conn, int client_id,
                      Rng& rng) -> Status {
    int64_t op = static_cast<int64_t>(rng.Next() % 100);
    if (op < 50) {  // read
      int64_t k = static_cast<int64_t>(rng.Next() % kRows);
      return conn
          .Query(StrFormat("SELECT v FROM chaos_counters WHERE key = %lld",
                           static_cast<long long>(k)))
          .status();
    }
    if (op < 80) {  // single-key increment (autocommit, single shard)
      int64_t k = static_cast<int64_t>(rng.Next() % kRows);
      attempts[static_cast<size_t>(k)]++;
      Status st = conn.Query(StrFormat("UPDATE chaos_counters SET v = v + 1 "
                                       "WHERE key = %lld",
                                       static_cast<long long>(k)))
                      .status();
      if (st.ok()) acked[static_cast<size_t>(k)]++;
      return st;
    }
    // Two-key transfer: an explicit transaction block, usually 2PC across
    // two workers. Ordered keys keep the workload deadlock-free.
    int64_t a = static_cast<int64_t>(rng.Next() % kRows);
    int64_t b = static_cast<int64_t>(rng.Next() % kRows);
    if (a == b) b = (a + 1) % kRows;
    if (a > b) std::swap(a, b);
    attempts[static_cast<size_t>(a)]++;
    attempts[static_cast<size_t>(b)]++;
    Status st = conn.Query("BEGIN").status();
    if (st.ok()) {
      st = conn.Query(StrFormat("UPDATE chaos_counters SET v = v + 1 "
                                "WHERE key = %lld",
                                static_cast<long long>(a)))
               .status();
    }
    if (st.ok()) {
      st = conn.Query(StrFormat("UPDATE chaos_counters SET v = v + 1 "
                                "WHERE key = %lld",
                                static_cast<long long>(b)))
               .status();
    }
    if (st.ok()) st = conn.Query("COMMIT").status();
    if (st.ok()) {
      // The commit was acked: it must survive any crash from here on.
      acked[static_cast<size_t>(a)]++;
      acked[static_cast<size_t>(b)]++;
      return st;
    }
    CITUSX_IGNORE_STATUS(conn.Query("ROLLBACK"),
                         "recovery probe; a failed rollback is expected");
    return st;
  };

  DriverOptions opts;
  opts.clients = kClients;
  opts.warmup = kWarmup;
  opts.sleep_between = 0;
  opts.endpoints = {"coordinator"};

  std::printf("%-14s %12s %10s %10s %10s %11s %9s\n", "phase", "tps",
              "p50 (ms)", "p95 (ms)", "p99 (ms)", "retryable", "fatal");

  // ---- Phase 1: fault-free baseline ----
  opts.duration = kBaseline;
  PhaseResult baseline = Measure("baseline", sim, deploy, opts, txn);

  // ---- Phase 2: chaos window ----
  // Seeded crash/restart schedule: every event crashes one worker for
  // 300-800 ms. Events stop at 70% of the window so the last restart lands
  // inside it. Background noise: a small connection-drop probability on two
  // workers and a delay spike on one.
  Rng schedule(args.seed);
  std::vector<engine::Node*> workers = deploy.workers();
  sim::Time chaos_start = sim.now() + kWarmup;
  int events = args.quick ? 3 : 6;
  sim::Time spread = kChaos * 7 / 10;
  for (int i = 0; i < events; i++) {
    const std::string& target =
        workers[schedule.Next() % workers.size()]->name();
    sim::Time at = chaos_start + 200 * sim::kMillisecond +
                   spread * i / std::max(1, events);
    sim::Time down_for =
        (300 + static_cast<sim::Time>(schedule.Next() % 500)) *
        sim::kMillisecond;
    std::printf("  scheduled: crash %s at t+%.2fs for %.2fs\n", target.c_str(),
                static_cast<double>(at - chaos_start) / 1e9,
                static_cast<double>(down_for) / 1e9);
    sim.faults().ScheduleCrash(at, target, down_for);
  }
  sim.faults().SetConnectionDropProbability("worker1", 0.0005);
  sim.faults().SetConnectionDropProbability("worker3", 0.0005);
  sim.faults().SetDelaySpike("worker2", 2 * sim::kMillisecond,
                             chaos_start + kChaos / 2);
  opts.duration = kChaos;
  PhaseResult chaos = Measure("chaos", sim, deploy, opts, txn);
  sim.faults().SetConnectionDropProbability("worker1", 0);
  sim.faults().SetConnectionDropProbability("worker3", 0);

  // ---- Phase 3: recovery wait ----
  // Wait until every worker is back up and every prepared transaction has
  // been resolved by the recovery daemon (bounded number of rounds).
  int64_t unresolved = -1;
  MustRun(sim, [&]() -> Status {
    for (int round = 0; round < 10; round++) {
      unresolved = 0;
      bool any_down = false;
      for (engine::Node* w : workers) {
        if (w->is_down()) any_down = true;
        unresolved += static_cast<int64_t>(w->txns().PreparedGids().size());
      }
      if (!any_down && unresolved == 0) break;
      if (!sim.WaitFor(2 * sim::kSecond)) break;
    }
    return Status::OK();
  });
  std::printf("%-14s %s (unresolved prepared txns: %lld)\n", "recovery",
              unresolved == 0 ? "all prepared transactions resolved"
                              : "UNRESOLVED PREPARED TRANSACTIONS",
              static_cast<long long>(unresolved));

  // ---- Phase 4: post-recovery ----
  opts.duration = kPost;
  PhaseResult post = Measure("post-recovery", sim, deploy, opts, txn);

  // ---- Invariant check: no acked commit lost, nothing applied twice ----
  int64_t losses = 0, over_applied = 0, missing_rows = 0;
  MustRun(sim, [&]() -> Status {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return conn_r.status();
    auto r = (*conn_r)->Query("SELECT key, v FROM chaos_counters");
    CITUSX_RETURN_IF_ERROR(r.status());
    std::vector<int64_t> value(static_cast<size_t>(kRows), -1);
    for (const auto& row : r->rows) {
      int64_t k = row[0].int_value();
      if (k >= 0 && k < kRows) value[static_cast<size_t>(k)] = row[1].int_value();
    }
    for (int64_t k = 0; k < kRows; k++) {
      int64_t v = value[static_cast<size_t>(k)];
      if (v < 0) {
        missing_rows++;
        continue;
      }
      if (v < acked[static_cast<size_t>(k)]) losses++;
      if (v > attempts[static_cast<size_t>(k)]) over_applied++;
    }
    return Status::OK();
  });

  int64_t total_faults = sim.faults().total_injected();
  double post_ratio = baseline.tps > 0 ? post.tps / baseline.tps : 0;
  std::printf("\nfaults injected: %lld   acked-commit losses: %lld   "
              "over-applied: %lld   post/baseline tps: %.2f\n",
              static_cast<long long>(total_faults),
              static_cast<long long>(losses),
              static_cast<long long>(over_applied), post_ratio);

  BenchReport report("chaos_ycsb");
  for (const PhaseResult* p : {&baseline, &chaos, &post}) {
    report.AddResult(
        {{"phase", sql::Json::MakeString(p->phase)},
         {"tps", sql::Json::MakeNumber(p->tps)},
         {"p50_ms", sql::Json::MakeNumber(p->latency.p50_ms)},
         {"p95_ms", sql::Json::MakeNumber(p->latency.p95_ms)},
         {"p99_ms", sql::Json::MakeNumber(p->latency.p99_ms)},
         {"retryable_errors",
          sql::Json::MakeNumber(static_cast<double>(p->retryable))},
         {"fatal_errors",
          sql::Json::MakeNumber(static_cast<double>(p->fatal))},
         {"reconnects",
          sql::Json::MakeNumber(static_cast<double>(p->reconnects))}});
  }
  report.AddResult(
      {{"seed", sql::Json::MakeNumber(static_cast<double>(args.seed))},
       {"faults_injected",
        sql::Json::MakeNumber(static_cast<double>(total_faults))},
       {"acked_commit_losses",
        sql::Json::MakeNumber(static_cast<double>(losses))},
       {"over_applied", sql::Json::MakeNumber(static_cast<double>(over_applied))},
       {"unresolved_prepared",
        sql::Json::MakeNumber(static_cast<double>(unresolved))},
       {"post_over_baseline_tps", sql::Json::MakeNumber(post_ratio)}});
  report.AddMetrics("coordinator", deploy.coordinator()->metrics());
  if (!report.WriteTo(args.json_path)) return 1;
  sim.Shutdown();

  // ---- Verdict ----
  bool ok = true;
  auto fail = [&](const char* msg) {
    std::fprintf(stderr, "FAIL: %s\n", msg);
    ok = false;
  };
  if (total_faults == 0) fail("no faults were injected");
  if (losses > 0) fail("acked commits were lost");
  if (over_applied > 0) fail("updates were applied more than once");
  if (missing_rows > 0) fail("rows went missing");
  if (unresolved != 0) fail("prepared transactions left unresolved");
  if (baseline.fatal + chaos.fatal + post.fatal > 0) {
    fail("fatal (non-retryable) errors surfaced to clients");
  }
  if (post_ratio < 0.8) {
    fail("post-recovery throughput dropped more than 20% below baseline");
  }
  if (!ok) return 1;
  std::printf("PASS: zero acked-commit losses, all prepared transactions "
              "resolved, post-recovery tps at %.0f%% of baseline.\n",
              post_ratio * 100);
  return 0;
}
