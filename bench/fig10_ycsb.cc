// Figure 10: YCSB workload A (50% reads / 50% updates, uniform keys).
//
// Paper: 100M rows (~100GB), 256 threads, every worker node acting as a
// coordinator with the client load-balancing across all nodes. Largely I/O
// bound: throughput scales with aggregate I/O capacity, with an extra boost
// once the data fits in memory. Citus 0+1 is slightly below PostgreSQL
// (distributed planning overhead).
#include "bench_common.h"
#include "workload/ycsb.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

int main() {
  PrintHeader("High-performance CRUD: YCSB workload A", "Figure 10");
  sim::CostModel cost;
  cost.buffer_pool_bytes = 24LL << 20;
  // Each client connection fans out into worker connections (§3.2.1);
  // production would interpose PgBouncer, we raise the cap instead.
  cost.max_connections = 600;

  YcsbConfig config;
  config.record_count = 100000;  // ~100MB logical (1KB rows)

  std::printf("%-12s %12s %14s %14s\n", "setup", "ops/sec", "read p95 (ms)",
              "update p95 (ms)");
  // Full p50/p95/p99 triples are printed per setup below the summary row.
  for (const Setup& setup : PaperSetups()) {
    YcsbConfig cfg = config;
    cfg.use_citus = setup.install_citus;
    WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                    citus::Deployment& deploy) {
      MustRun(sim, [&]() -> Status {
        auto conn_r = deploy.Connect();
        if (!conn_r.ok()) return conn_r.status();
        CITUSX_RETURN_IF_ERROR(YcsbCreateSchema(**conn_r, cfg));
        return YcsbLoad(**conn_r, cfg, 0, cfg.record_count);
      });
      DriverOptions opts;
      opts.clients = 160;
      opts.warmup = 2 * sim::kSecond;
      opts.duration = 8 * sim::kSecond;
      opts.sleep_between = 0;
      // Every worker acts as a coordinator; clients load-balance (§4.3).
      opts.endpoints.clear();
      if (setup.workers == 0) {
        opts.endpoints.push_back("coordinator");
      } else {
        for (engine::Node* w : deploy.workers()) {
          opts.endpoints.push_back(w->name());
        }
      }
      // Measure reads and updates separately for the response-time columns.
      DriverResult reads, updates;
      {
        DriverOptions half = opts;
        half.clients = opts.clients;
        DriverResult all = RunDriver(&sim, &deploy.cluster().directory(), half,
                                     YcsbWorkloadA(cfg));
        // Split measurement: run a short read-only and update-only probe for
        // the latency columns.
        DriverOptions probe = opts;
        probe.clients = 8;
        probe.warmup = sim::kSecond;
        probe.duration = 2 * sim::kSecond;
        reads = RunDriver(&sim, &deploy.cluster().directory(), probe,
                          YcsbWorkloadC(cfg));
        YcsbConfig updates_cfg = cfg;
        updates_cfg.read_proportion = 0.0;
        updates = RunDriver(&sim, &deploy.cluster().directory(), probe,
                            YcsbWorkloadA(updates_cfg));
        LatencyTriple read_lat = Percentiles(reads.latency);
        LatencyTriple update_lat = Percentiles(updates.latency);
        std::printf("%-12s %12.0f %14.2f %14.2f\n", setup.name.c_str(),
                    all.PerSecond(), read_lat.p95_ms, update_lat.p95_ms);
        PrintLatencyTriple("reads", reads.latency);
        PrintLatencyTriple("updates", updates.latency);
        if (all.fatal_errors > 0) {
          std::printf("  (%lld errors: %s)\n",
                      static_cast<long long>(all.fatal_errors),
                      all.last_error.c_str());
        }
      }
    });
  }
  std::printf("\nNote: throughput is I/O bound until the working set fits the "
              "aggregate buffer pool.\n");
  return 0;
}
