// Scale ablation: transaction pooling, shared-connection pipelining, and
// delta metadata sync — the three mechanisms that 10x cluster and session
// scale (paper §3.2.1: connections are the scarcest resource in a
// process-per-connection cluster).
//
// Two sweeps:
//
//   nodes     pgbench -S-style single-shard reads (1/16 multi-shard
//             aggregates riding the pipelined executor) against clusters of
//             8 -> 128 nodes, clients spread over 8 coordinating nodes (MX).
//             Before each run's workload, a burst of metadata churns
//             (CREATE INDEX) measures sync cost per node per change — with
//             the delta fast path and again with the full three-round-trip
//             protocol. Delta cost must stay proportional to the change
//             (per-node bytes flat as the cluster grows 16x), not to the
//             catalog or the worker list.
//
//   sessions  1k -> 1M logical client sessions (each with its own SET
//             state) multiplexed over a fixed driver fleet and a bounded
//             connection budget to the coordinator. pooled mode runs them
//             through the transaction pooler (state replayed on attach);
//             the reconnect baseline gives each transaction a dedicated
//             connection — the only way a non-pooled deployment can serve
//             more sessions than it has connection slots. Pooling must
//             deliver >= 2x aggregate tps at >= 100k sessions on the same
//             budget.
//
//   abl_scale [--quick] [--json=<path>] [--no-pipelining] [--no-delta]
#include <unordered_map>

#include "bench_common.h"
#include "common/str.h"
#include "pool/pooler.h"

using namespace citusx;
using namespace citusx::bench;

namespace {

struct ScaleFlags {
  bool pipelining = true;
  bool delta = true;
};

struct SyncCost {
  int64_t bytes = 0;
  int64_t round_trips = 0;
  int64_t delta_syncs = 0;
};

SyncCost TotalSyncCost(citus::CitusExtension* ext) {
  SyncCost c;
  for (const auto& [name, st] : ext->sync_states()) {
    c.bytes += st.bytes_sent;
    c.round_trips += st.round_trips;
    c.delta_syncs += st.delta_syncs;
  }
  return c;
}

Status LoadRows(citus::Deployment& deploy, int64_t rows) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE kv (key bigint PRIMARY KEY, v text)").status());
  CITUSX_RETURN_IF_ERROR(
      conn.Query("SELECT create_distributed_table('kv', 'key')").status());
  std::vector<std::vector<std::string>> batch;
  for (int64_t i = 0; i < rows; i++) {
    batch.push_back(
        {std::to_string(i), StrFormat("v-%lld", static_cast<long long>(i))});
    if (batch.size() == 2000) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Sweep 1: tps and metadata-churn cost vs node count.
// ---------------------------------------------------------------------------

struct NodeScaleResult {
  int nodes = 0;
  double tps = 0;
  LatencyTriple latency;
  int64_t errors = 0;
  int64_t retryable = 0;
  int64_t pipelined_tasks = 0;
  // Per peer node, per metadata change.
  double delta_bytes_per_node = 0;
  double delta_rts_per_node = 0;
  double full_bytes_per_node = 0;
  double full_rts_per_node = 0;
  int64_t delta_syncs = 0;
};

// `churns` CREATE INDEX statements; returns (bytes, RTs) per peer per churn.
Status RunChurn(citus::Deployment& deploy, net::Connection& conn, int* seq,
                int churns, int peers, double* bytes_per_node,
                double* rts_per_node, int64_t* delta_syncs) {
  citus::CitusExtension* coord = deploy.extension(deploy.coordinator());
  SyncCost before = TotalSyncCost(coord);
  for (int k = 0; k < churns; k++) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query(StrFormat("CREATE INDEX scale_idx_%d ON kv (v)", (*seq)++))
            .status());
  }
  SyncCost after = TotalSyncCost(coord);
  double denom = static_cast<double>(peers) * churns;
  *bytes_per_node = static_cast<double>(after.bytes - before.bytes) / denom;
  *rts_per_node =
      static_cast<double>(after.round_trips - before.round_trips) / denom;
  *delta_syncs = after.delta_syncs - before.delta_syncs;
  return Status::OK();
}

NodeScaleResult RunNodeScale(int nodes, const ScaleFlags& flags, bool quick) {
  sim::CostModel cost;
  cost.cores_per_node = 1;  // small nodes: small clusters visibly saturate
  cost.buffer_pool_bytes = 256LL << 20;

  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = nodes - 1;
  options.cost = cost;
  options.citus.enable_task_pipelining = flags.pipelining;
  options.citus.enable_delta_metadata_sync = flags.delta;
  citus::Deployment deploy(&sim, options);

  const int64_t rows = quick ? 1000 : 4000;
  MustRun(sim, [&] { return LoadRows(deploy, rows); });

  NodeScaleResult out;
  out.nodes = nodes;
  const int churns = 3;
  int seq = nodes * 100;  // unique index names across phases
  MustRun(sim, [&] {
    auto conn = deploy.Connect();
    if (!conn.ok()) return conn.status();
    // Churn cost with the delta fast path, then with the full protocol.
    CITUSX_RETURN_IF_ERROR(RunChurn(deploy, **conn, &seq, churns, nodes - 1,
                                    &out.delta_bytes_per_node,
                                    &out.delta_rts_per_node,
                                    &out.delta_syncs));
    citus::CitusExtension* coord = deploy.extension(deploy.coordinator());
    coord->mutable_config().enable_delta_metadata_sync = false;
    int64_t ignored = 0;
    CITUSX_RETURN_IF_ERROR(RunChurn(deploy, **conn, &seq, churns, nodes - 1,
                                    &out.full_bytes_per_node,
                                    &out.full_rts_per_node, &ignored));
    coord->mutable_config().enable_delta_metadata_sync = flags.delta;
    return Status::OK();
  });

  workload::DriverOptions dopts;
  dopts.clients = quick ? 48 : 96;
  // Each client session lazily opens one connection per worker it touches
  // (connect_cost apiece), so the cold-connection storm grows with the
  // cluster. Scale warmup with node count to keep it out of the measured
  // window — we are measuring steady-state throughput, not connect churn.
  dopts.warmup =
      (quick ? 50 : 100) * sim::kMillisecond + nodes * 8 * sim::kMillisecond;
  dopts.duration = (quick ? 200 : 400) * sim::kMillisecond;
  dopts.sleep_between = 0;
  dopts.endpoints = {"coordinator"};
  for (int w = 1; w <= std::min(7, nodes - 1); w++) {
    dopts.endpoints.push_back(StrFormat("worker%d", w));
  }

  workload::DriverResult r = workload::RunDriver(
      &sim, &deploy.cluster().directory(), dopts,
      [&](net::Connection& conn, int client_id, Rng& rng) -> Status {
        if (rng.Next() % 16 == 0) {
          // Multi-shard fan-out: pipelined over shared connections.
          return conn.Query("SELECT count(*) FROM kv").status();
        }
        int64_t key = static_cast<int64_t>(rng.Next() % rows);
        return conn
            .Query(StrFormat("SELECT v FROM kv WHERE key = %lld",
                             static_cast<long long>(key)))
            .status();
      });

  out.tps = r.PerSecond();
  out.latency = Percentiles(r.latency);
  out.errors = r.fatal_errors;
  out.retryable = r.retryable_errors;
  for (size_t i = 0; i < deploy.cluster().num_nodes(); i++) {
    out.pipelined_tasks += deploy.cluster().node(i)->metrics().CounterValue(
        "citus.executor.pipelined_tasks");
  }
  if (r.fatal_errors > 0) {
    std::fprintf(stderr, "nodes=%d last error: %s\n", nodes,
                 r.last_error.c_str());
  }
  sim.Shutdown();
  return out;
}

// ---------------------------------------------------------------------------
// Sweep 2: tps vs logical session count, pooled vs reconnect baseline.
// ---------------------------------------------------------------------------

struct SessionScaleResult {
  int64_t sessions = 0;
  double tps = 0;
  LatencyTriple latency;
  int64_t errors = 0;
  int64_t retryable = 0;
  int64_t state_replays = 0;
  int64_t physical_conns = 0;  // peak backend connections used (pooled)
};

SessionScaleResult RunSessionScale(int64_t sessions, bool pooled, bool quick) {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 4;
  options.cost.buffer_pool_bytes = 256LL << 20;
  citus::Deployment deploy(&sim, options);

  const int64_t rows = quick ? 1000 : 2000;
  MustRun(sim, [&] { return LoadRows(deploy, rows); });

  // The bounded budget: at most `budget` concurrent connections into the
  // coordinator, for both modes.
  const int budget = quick ? 16 : 32;
  const int drivers = budget;
  const sim::Time warmup = 50 * sim::kMillisecond;
  const sim::Time duration = (quick ? 250 : 400) * sim::kMillisecond;

  net::NodeDirectory* directory = &deploy.cluster().directory();
  pool::PoolerOptions popts;
  popts.pool_size = budget;
  pool::TransactionPooler pooler(&sim, directory, nullptr, "coordinator",
                                 popts);
  // Logical sessions materialize on first use; the rest of the million are
  // idle, which is the point — idle sessions must cost nothing.
  std::unordered_map<int64_t, std::unique_ptr<pool::PooledSession>> live;

  SessionScaleResult out;
  out.sessions = sessions;
  sim::Time start_measure = warmup;
  sim::Time end = warmup + duration;
  sim::Histogram latency;

  for (int d = 0; d < drivers; d++) {
    sim.Spawn("scale_driver", [&, d] {
      Rng rng(static_cast<uint64_t>(d) * 104729 + 11);
      // Each driver owns a disjoint slice of the session id space, so a
      // logical session is never driven by two processes at once.
      int64_t slice = sessions / drivers;
      int64_t base = d * slice;
      while (sim.now() < end) {
        int64_t sid = base + static_cast<int64_t>(rng.Next()) %
                                 std::max<int64_t>(1, slice);
        int64_t key = static_cast<int64_t>(rng.Next() % rows);
        std::string sql = StrFormat("SELECT v FROM kv WHERE key = %lld",
                                    static_cast<long long>(key));
        sim::Time t0 = sim.now();
        Status st = [&]() -> Status {
          if (pooled) {
            auto& sess = live[sid];
            if (sess == nullptr) {
              sess = pooler.OpenSession();
              // Per-session GUC state, replayed on every backend swap.
              CITUSX_RETURN_IF_ERROR(
                  sess->Query(StrFormat("SET app.session = 's%lld'",
                                        static_cast<long long>(sid)))
                      .status());
            }
            return sess->Query(sql).status();
          }
          // Reconnect baseline: a dedicated connection per transaction is
          // the only way to serve `sessions` clients with `budget` slots.
          auto conn = directory->Connect(nullptr, "coordinator");
          if (!conn.ok()) return conn.status();
          return (*conn)->Query(sql).status();
        }();
        sim::Time t1 = sim.now();
        if (t0 >= start_measure && t1 <= end) {
          if (st.ok()) {
            out.tps += 1;  // transaction count until normalized below
            latency.Record(t1 - t0);
          } else if (st.error_class() == ErrorClass::kRetryableTransient ||
                     st.error_class() == ErrorClass::kNodeDown) {
            out.retryable++;
          } else {
            out.errors++;
          }
        }
      }
    });
  }
  sim.Run();
  out.tps = out.tps * 1e9 / static_cast<double>(duration);
  out.latency = Percentiles(latency);
  engine::Node* server = directory->Find("coordinator");
  out.state_replays = server->metrics().CounterValue("pool.state_replays");
  out.physical_conns = pooler.physical_connections();
  live.clear();  // sessions close before the pooler goes away
  sim.Shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleFlags flags;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    if (a == "--no-pipelining") {
      flags.pipelining = false;
    } else if (a == "--no-delta") {
      flags.delta = false;
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchArgs args = ParseBenchArgs(static_cast<int>(rest.size()), rest.data());

  PrintHeader("Ablation: transaction pooling + pipelining + delta sync scale",
              "paper §3.2.1 connection scarcity; cluster and session scale");

  BenchReport report("abl_scale");

  // ---- Sweep 1: node count ----
  std::vector<int> node_counts =
      args.quick ? std::vector<int>{8, 32} : std::vector<int>{8, 16, 32, 64, 128};
  std::printf("%-8s %12s %10s %10s %10s | %14s %12s %14s %12s\n", "nodes",
              "tps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "delta B/node",
              "delta RT/n", "full B/node", "full RT/n");
  std::vector<NodeScaleResult> node_results;
  for (int n : node_counts) {
    NodeScaleResult r = RunNodeScale(n, flags, args.quick);
    node_results.push_back(r);
    std::printf("%-8d %12.0f %10.3f %10.3f %10.3f | %14.0f %12.2f %14.0f "
                "%12.2f\n",
                r.nodes, r.tps, r.latency.p50_ms, r.latency.p95_ms,
                r.latency.p99_ms, r.delta_bytes_per_node, r.delta_rts_per_node,
                r.full_bytes_per_node, r.full_rts_per_node);
    report.AddResult(
        {{"phase", sql::Json::MakeString("nodes")},
         {"nodes", sql::Json::MakeNumber(r.nodes)},
         {"tps", sql::Json::MakeNumber(r.tps)},
         {"p50_ms", sql::Json::MakeNumber(r.latency.p50_ms)},
         {"p95_ms", sql::Json::MakeNumber(r.latency.p95_ms)},
         {"p99_ms", sql::Json::MakeNumber(r.latency.p99_ms)},
         {"errors", sql::Json::MakeNumber(static_cast<double>(r.errors))},
         {"retryable_errors",
          sql::Json::MakeNumber(static_cast<double>(r.retryable))},
         {"pipelined_tasks",
          sql::Json::MakeNumber(static_cast<double>(r.pipelined_tasks))},
         {"churn_delta_bytes_per_node",
          sql::Json::MakeNumber(r.delta_bytes_per_node)},
         {"churn_delta_rts_per_node",
          sql::Json::MakeNumber(r.delta_rts_per_node)},
         {"churn_full_bytes_per_node",
          sql::Json::MakeNumber(r.full_bytes_per_node)},
         {"churn_full_rts_per_node",
          sql::Json::MakeNumber(r.full_rts_per_node)},
         {"delta_syncs",
          sql::Json::MakeNumber(static_cast<double>(r.delta_syncs))}});
  }

  // ---- Sweep 2: session count ----
  std::vector<int64_t> session_counts =
      args.quick ? std::vector<int64_t>{1000, 100000}
                 : std::vector<int64_t>{1000, 10000, 100000, 1000000};
  std::printf("\n%-10s %-10s %12s %10s %10s %10s %10s\n", "sessions", "mode",
              "tps", "p50 (ms)", "p99 (ms)", "replays", "conns");
  std::vector<std::pair<SessionScaleResult, SessionScaleResult>> session_rows;
  for (int64_t s : session_counts) {
    SessionScaleResult pooled = RunSessionScale(s, /*pooled=*/true,
                                                args.quick);
    SessionScaleResult base = RunSessionScale(s, /*pooled=*/false, args.quick);
    for (const auto* r : {&pooled, &base}) {
      const char* mode = (r == &pooled) ? "pooled" : "reconnect";
      std::printf("%-10lld %-10s %12.0f %10.3f %10.3f %10lld %10lld\n",
                  static_cast<long long>(r->sessions), mode, r->tps,
                  r->latency.p50_ms, r->latency.p99_ms,
                  static_cast<long long>(r->state_replays),
                  static_cast<long long>(r->physical_conns));
      report.AddResult(
          {{"phase", sql::Json::MakeString("sessions")},
           {"sessions",
            sql::Json::MakeNumber(static_cast<double>(r->sessions))},
           {"mode", sql::Json::MakeString(mode)},
           {"tps", sql::Json::MakeNumber(r->tps)},
           {"p50_ms", sql::Json::MakeNumber(r->latency.p50_ms)},
           {"p99_ms", sql::Json::MakeNumber(r->latency.p99_ms)},
           {"errors", sql::Json::MakeNumber(static_cast<double>(r->errors))},
           {"retryable_errors",
            sql::Json::MakeNumber(static_cast<double>(r->retryable))},
           {"state_replays",
            sql::Json::MakeNumber(static_cast<double>(r->state_replays))},
           {"physical_connections",
            sql::Json::MakeNumber(static_cast<double>(r->physical_conns))}});
    }
    session_rows.emplace_back(std::move(pooled), std::move(base));
  }

  // ---- Self-checks ----
  bool failed = false;
  auto fail = [&](const char* fmt, auto... vals) {
    std::fprintf(stderr, fmt, vals...);
    failed = true;
  };

  for (const NodeScaleResult& r : node_results) {
    if (r.errors > 0) {
      fail("FAIL: nodes=%d produced %lld errors\n", r.nodes,
           static_cast<long long>(r.errors));
    }
    if (flags.pipelining && r.pipelined_tasks <= 0) {
      fail("FAIL: nodes=%d executed no pipelined tasks\n", r.nodes);
    }
  }
  if (flags.delta && node_results.size() >= 2) {
    const NodeScaleResult& lo = node_results.front();
    const NodeScaleResult& hi = node_results.back();
    double flatness = lo.delta_bytes_per_node > 0
                          ? hi.delta_bytes_per_node / lo.delta_bytes_per_node
                          : 1e9;
    std::printf("\nDelta churn bytes/node: %.0f @ %d nodes -> %.0f @ %d nodes "
                "(%.2fx across a %dx cluster)\n",
                lo.delta_bytes_per_node, lo.nodes, hi.delta_bytes_per_node,
                hi.nodes, flatness, hi.nodes / lo.nodes);
    report.AddResult(
        {{"delta_bytes_flatness", sql::Json::MakeNumber(flatness)}});
    if (flatness > 2.0) {
      fail("FAIL: delta sync cost per node grew %.2fx across a %dx cluster — "
           "not proportional to the change\n",
           flatness, hi.nodes / lo.nodes);
    }
    if (hi.delta_rts_per_node > 1.5 || hi.full_rts_per_node < 2.5) {
      fail("FAIL: expected ~1 RT/churn with delta (got %.2f) vs ~3 full "
           "(got %.2f) at %d nodes\n",
           hi.delta_rts_per_node, hi.full_rts_per_node, hi.nodes);
    }
    if (hi.delta_syncs <= 0) {
      fail("FAIL: no delta syncs at %d nodes\n", hi.nodes);
    }
  }

  double checked_ratio = 0;
  for (const auto& [pooled, base] : session_rows) {
    if (pooled.errors > 0 || base.errors > 0) {
      fail("FAIL: sessions=%lld produced errors (pooled=%lld base=%lld)\n",
           static_cast<long long>(pooled.sessions),
           static_cast<long long>(pooled.errors),
           static_cast<long long>(base.errors));
    }
    if (pooled.sessions >= 100000) {
      double ratio = base.tps > 0 ? pooled.tps / base.tps : 0;
      checked_ratio = ratio;
      std::printf("Pooled / reconnect tps at %lld sessions: %.2fx\n",
                  static_cast<long long>(pooled.sessions), ratio);
      report.AddResult(
          {{"sessions",
            sql::Json::MakeNumber(static_cast<double>(pooled.sessions))},
           {"pooled_over_reconnect", sql::Json::MakeNumber(ratio)}});
      if (ratio < 2.0) {
        fail("FAIL: expected >= 2x pooled throughput at %lld sessions on the "
             "same connection budget, got %.2fx\n",
             static_cast<long long>(pooled.sessions), ratio);
      }
      if (pooled.state_replays <= 0) {
        fail("FAIL: no state replays at %lld sessions — multiplexing never "
             "swapped tenants\n",
             static_cast<long long>(pooled.sessions));
      }
    }
  }

  if (!report.WriteTo(args.json_path)) return 1;
  if (failed) return 1;
  std::printf("PASS: %d-node cluster served the workload; pooling delivered "
              "%.2fx at >= 100k sessions on a bounded connection budget.\n",
              node_counts.back(), checked_ratio);
  return 0;
}
