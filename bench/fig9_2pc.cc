// Figure 9: distributed transaction (2PC) overhead.
//
// Paper: two 50GB pgbench tables distributed and co-located by key; a
// two-statement transaction updates both. One run uses the same random key
// for both updates (single-node transaction, delegated commit); the other
// uses different keys (two-phase commit when the keys land on different
// nodes). Expected shape: 2PC costs 20-30% and both modes scale with nodes.
#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {

int64_t kRows = 500000;  // scaled down by --quick

Status Setup2Tables(citus::Deployment& deploy, bool use_citus) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  for (const char* t : {"a1", "a2"}) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query(StrFormat(
                       "CREATE TABLE %s (key bigint PRIMARY KEY, v bigint)", t))
            .status());
    if (use_citus) {
      CITUSX_RETURN_IF_ERROR(
          conn.Query(StrFormat("SELECT create_distributed_table('%s', 'key'%s)",
                               t,
                               std::string(t) == "a2"
                                   ? ", colocate_with := 'a1'"
                                   : ""))
              .status());
    }
    std::vector<std::vector<std::string>> rows;
    for (int64_t k = 0; k < kRows; k++) {
      rows.push_back({std::to_string(k), "0"});
      if (rows.size() == 10000) {
        CITUSX_RETURN_IF_ERROR(conn.CopyIn(t, {}, std::move(rows)).status());
        rows.clear();
      }
    }
    if (!rows.empty()) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn(t, {}, std::move(rows)).status());
    }
  }
  return Status::OK();
}

ClientTxn TwoUpdateTxn(bool same_key) {
  return [same_key](net::Connection& conn, int client, Rng& rng) -> Status {
    int64_t key1 = rng.Uniform(0, kRows - 1);
    int64_t key2 = same_key ? key1 : rng.Uniform(0, kRows - 1);
    CITUSX_RETURN_IF_ERROR(conn.Query("BEGIN").status());
    auto u1 = conn.Query(StrFormat(
        "UPDATE a1 SET v = v + 1 WHERE key = %lld",
        static_cast<long long>(key1)));
    if (!u1.ok()) {
      auto rb = conn.Query("ROLLBACK");
      return u1.status();
    }
    auto u2 = conn.Query(StrFormat(
        "UPDATE a2 SET v = v - 1 WHERE key = %lld",
        static_cast<long long>(key2)));
    if (!u2.ok()) {
      auto rb = conn.Query("ROLLBACK");
      return u2.status();
    }
    return conn.Query("COMMIT").status();
  };
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Distributed transactions: 2PC overhead (pgbench-style)",
              "Figure 9");
  sim::CostModel cost;
  // The paper's pgbench tables (50GB) exceed memory: updates are disk-bound
  // per worker, which is what makes both modes scale with node count.
  cost.buffer_pool_bytes = 4LL << 20;

  std::vector<Setup> setups;
  for (const Setup& s : PaperSetups()) {
    if (s.install_citus) setups.push_back(s);  // 2PC comparison is Citus-only
  }
  int clients = 96;
  sim::Time warmup = 2 * sim::kSecond;
  sim::Time duration = 10 * sim::kSecond;
  if (args.quick) {
    kRows = 20000;
    clients = 16;
    warmup = 200 * sim::kMillisecond;
    duration = sim::kSecond;
    setups = {{"Citus 2+1", 2, true}};
  }

  BenchReport report("fig9");
  bool invariant_ok = true;
  std::printf("%-12s %16s %16s %10s\n", "setup", "same-key (TPS)",
              "diff-key (TPS)", "penalty");
  for (const Setup& setup : setups) {
    double tps[2] = {0, 0};
    for (int mode = 0; mode < 2; mode++) {
      const char* mode_name = mode == 0 ? "same-key" : "diff-key";
      WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                      citus::Deployment& deploy) {
        MustRun(sim, [&] { return Setup2Tables(deploy, true); });
        // Snapshot the commit counters after the load phase: schema DDL and
        // COPY commit over many executor connections at once, so only the
        // pgbench-style workload below has the exactly-two-participants
        // shape the invariant check relies on.
        citus::CitusExtension* ext = deploy.extension(deploy.coordinator());
        int64_t prepares0 = ext->two_phase_prepares;
        int64_t commits_2pc0 = ext->two_phase_commits;
        int64_t commits_1pc0 = ext->single_node_commits;
        DriverOptions opts;
        opts.clients = clients;
        opts.warmup = warmup;
        opts.duration = duration;
        opts.sleep_between = 0;
        DriverResult r = RunDriver(&sim, &deploy.cluster().directory(), opts,
                                   TwoUpdateTxn(mode == 0));
        tps[mode] = r.PerSecond();
        LatencyTriple lat = Percentiles(r.latency);

        int64_t prepares = ext->two_phase_prepares - prepares0;
        int64_t commits_2pc = ext->two_phase_commits - commits_2pc0;
        int64_t commits_1pc = ext->single_node_commits - commits_1pc0;
        // Every distributed commit touching >= 2 nodes sends exactly one
        // PREPARE TRANSACTION per participant, and a two-statement pgbench
        // transaction has exactly two.
        if (prepares != 2 * commits_2pc) {
          std::fprintf(stderr,
                       "2PC invariant violated (%s, %s): prepares=%lld != "
                       "2 * two_phase_commits=%lld\n",
                       setup.name.c_str(), mode_name,
                       static_cast<long long>(prepares),
                       static_cast<long long>(commits_2pc));
          invariant_ok = false;
        }
        if (mode == 1 && setup.workers >= 2 && commits_2pc == 0) {
          std::fprintf(stderr,
                       "expected some two-phase commits in diff-key mode on "
                       "%s, saw none\n", setup.name.c_str());
          invariant_ok = false;
        }
        report.AddResult(
            {{"setup", sql::Json::MakeString(setup.name)},
             {"mode", sql::Json::MakeString(mode_name)},
             {"tps", sql::Json::MakeNumber(tps[mode])},
             {"p50_ms", sql::Json::MakeNumber(lat.p50_ms)},
             {"p95_ms", sql::Json::MakeNumber(lat.p95_ms)},
             {"p99_ms", sql::Json::MakeNumber(lat.p99_ms)},
             {"two_phase_prepares",
              sql::Json::MakeNumber(static_cast<double>(prepares))},
             {"two_phase_commits",
              sql::Json::MakeNumber(static_cast<double>(commits_2pc))},
             {"single_node_commits",
              sql::Json::MakeNumber(static_cast<double>(commits_1pc))}});
        if (mode == 1) {
          report.AddMetrics(setup.name + "/coordinator",
                            deploy.coordinator()->metrics());
        }
      });
    }
    std::printf("%-12s %16.0f %16.0f %9.0f%%\n", setup.name.c_str(), tps[0],
                tps[1], 100.0 * (1.0 - tps[1] / tps[0]));
  }
  std::printf("\nNote: same-key = both updates on one co-located shard group "
              "(single-node commit);\ndiff-key = random keys, usually two "
              "nodes (PREPARE TRANSACTION + COMMIT PREPARED).\n");

  if (!report.WriteTo(args.json_path)) return 1;
  if (!args.json_path.empty()) {
    // Validate the emitted document round-trips and carries the counters.
    std::FILE* f = std::fopen(args.json_path.c_str(), "r");
    if (f == nullptr) return 1;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    auto parsed = sql::Json::Parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "emitted JSON does not parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    sql::JsonPtr results = (*parsed)->GetField("results");
    if (results == nullptr || results->array_size() == 0) {
      std::fprintf(stderr, "emitted JSON has no results\n");
      return 1;
    }
    for (const sql::JsonPtr& row : results->array_items()) {
      double p = row->GetField("two_phase_prepares")->number_value();
      double c = row->GetField("two_phase_commits")->number_value();
      if (p != 2 * c) {
        std::fprintf(stderr, "parsed JSON violates 2PC invariant\n");
        return 1;
      }
    }
  }
  return invariant_ok ? 0 : 1;
}
