// Figure 9: distributed transaction (2PC) overhead.
//
// Paper: two 50GB pgbench tables distributed and co-located by key; a
// two-statement transaction updates both. One run uses the same random key
// for both updates (single-node transaction, delegated commit); the other
// uses different keys (two-phase commit when the keys land on different
// nodes). Expected shape: 2PC costs 20-30% and both modes scale with nodes.
#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {

constexpr int64_t kRows = 500000;

Status Setup2Tables(citus::Deployment& deploy, bool use_citus) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  for (const char* t : {"a1", "a2"}) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query(StrFormat(
                       "CREATE TABLE %s (key bigint PRIMARY KEY, v bigint)", t))
            .status());
    if (use_citus) {
      CITUSX_RETURN_IF_ERROR(
          conn.Query(StrFormat("SELECT create_distributed_table('%s', 'key'%s)",
                               t,
                               std::string(t) == "a2"
                                   ? ", colocate_with := 'a1'"
                                   : ""))
              .status());
    }
    std::vector<std::vector<std::string>> rows;
    for (int64_t k = 0; k < kRows; k++) {
      rows.push_back({std::to_string(k), "0"});
      if (rows.size() == 10000) {
        CITUSX_RETURN_IF_ERROR(conn.CopyIn(t, {}, std::move(rows)).status());
        rows.clear();
      }
    }
    if (!rows.empty()) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn(t, {}, std::move(rows)).status());
    }
  }
  return Status::OK();
}

ClientTxn TwoUpdateTxn(bool same_key) {
  return [same_key](net::Connection& conn, int client, Rng& rng) -> Status {
    int64_t key1 = rng.Uniform(0, kRows - 1);
    int64_t key2 = same_key ? key1 : rng.Uniform(0, kRows - 1);
    CITUSX_RETURN_IF_ERROR(conn.Query("BEGIN").status());
    auto u1 = conn.Query(StrFormat(
        "UPDATE a1 SET v = v + 1 WHERE key = %lld",
        static_cast<long long>(key1)));
    if (!u1.ok()) {
      auto rb = conn.Query("ROLLBACK");
      return u1.status();
    }
    auto u2 = conn.Query(StrFormat(
        "UPDATE a2 SET v = v - 1 WHERE key = %lld",
        static_cast<long long>(key2)));
    if (!u2.ok()) {
      auto rb = conn.Query("ROLLBACK");
      return u2.status();
    }
    return conn.Query("COMMIT").status();
  };
}

}  // namespace

int main() {
  PrintHeader("Distributed transactions: 2PC overhead (pgbench-style)",
              "Figure 9");
  sim::CostModel cost;
  // The paper's pgbench tables (50GB) exceed memory: updates are disk-bound
  // per worker, which is what makes both modes scale with node count.
  cost.buffer_pool_bytes = 4LL << 20;

  std::printf("%-12s %16s %16s %10s\n", "setup", "same-key (TPS)",
              "diff-key (TPS)", "penalty");
  for (const Setup& setup : PaperSetups()) {
    if (!setup.install_citus) continue;  // the 2PC comparison is Citus-only
    double tps[2] = {0, 0};
    for (int mode = 0; mode < 2; mode++) {
      WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                      citus::Deployment& deploy) {
        MustRun(sim, [&] { return Setup2Tables(deploy, true); });
        DriverOptions opts;
        opts.clients = 96;
        opts.warmup = 2 * sim::kSecond;
        opts.duration = 10 * sim::kSecond;
        opts.sleep_between = 0;
        DriverResult r = RunDriver(&sim, &deploy.cluster().directory(), opts,
                                   TwoUpdateTxn(mode == 0));
        tps[mode] = r.PerSecond();
      });
    }
    std::printf("%-12s %16.0f %16.0f %9.0f%%\n", setup.name.c_str(), tps[0],
                tps[1], 100.0 * (1.0 - tps[1] / tps[0]));
  }
  std::printf("\nNote: same-key = both updates on one co-located shard group "
              "(single-node commit);\ndiff-key = random keys, usually two "
              "nodes (PREPARE TRANSACTION + COMMIT PREPARED).\n");
  return 0;
}
