// Tables 1 & 2: workload-pattern characterization and the capability matrix.
//
// Table 1 of the paper lists the typical query latency each workload pattern
// expects (MT ~10ms, RA ~100ms, HC ~1ms, DW ~10s+). This bench runs one
// representative operation per pattern on a Citus 4+1 cluster and prints the
// measured (virtual) latency next to the paper's expectation. Table 2's
// capability matrix is exercised feature-by-feature and printed as a
// checklist.
#include "bench_common.h"
#include "common/str.h"
#include "workload/gharchive.h"
#include "workload/tpch.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {

double MeasureMs(sim::Simulation& sim, net::Connection& conn,
                 const std::string& sql, int runs = 5) {
  sim::Time total = 0;
  for (int i = 0; i < runs; i++) {
    sim::Time t0 = sim.now();
    auto r = conn.Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "  query failed: %s\n  %s\n", sql.c_str(),
                   r.status().ToString().c_str());
      return -1;
    }
    total += sim.now() - t0;
  }
  return static_cast<double>(total) / runs / 1e6;
}

}  // namespace

int main() {
  PrintHeader("Workload-pattern characterization", "Tables 1 and 2");
  Setup setup{"Citus 4+1", 4, true};
  sim::CostModel cost;
  cost.buffer_pool_bytes = 64LL << 20;
  WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                  citus::Deployment& deploy) {
    double mt_ms = 0, ra_ms = 0, hc_ms = 0, dw_ms = 0;
    bool capabilities_ok = true;
    MustRun(sim, [&]() -> Status {
      auto conn_r = deploy.Connect();
      if (!conn_r.ok()) return conn_r.status();
      net::Connection& conn = **conn_r;

      // --- MT: a routed multi-statement tenant transaction ---
      CITUSX_RETURN_IF_ERROR(
          conn.Query("CREATE TABLE tenants_orders (tenant bigint, id bigint, "
                     "total double precision, PRIMARY KEY (tenant, id))")
              .status());
      CITUSX_RETURN_IF_ERROR(
          conn.Query("SELECT create_distributed_table('tenants_orders', "
                     "'tenant')")
              .status());
      for (int t = 0; t < 50; t++) {
        for (int o = 0; o < 20; o++) {
          CITUSX_RETURN_IF_ERROR(
              conn.Query(StrFormat(
                             "INSERT INTO tenants_orders VALUES (%d, %d, %d.5)",
                             t, o, o))
                  .status());
        }
      }
      // --- HC: key-value table ---
      CITUSX_RETURN_IF_ERROR(
          conn.Query("CREATE TABLE objects (key bigint PRIMARY KEY, doc jsonb)")
              .status());
      CITUSX_RETURN_IF_ERROR(
          conn.Query("SELECT create_distributed_table('objects', 'key')")
              .status());
      for (int k = 0; k < 200; k++) {
        CITUSX_RETURN_IF_ERROR(
            conn.Query(StrFormat("INSERT INTO objects VALUES (%d, "
                                 "'{\"n\": %d}'::jsonb)",
                                 k, k))
                .status());
      }
      // --- RA: github events with rollup ---
      GhArchiveConfig gh;
      CITUSX_RETURN_IF_ERROR(GhCreateSchema(conn, gh));
      Rng rng(3);
      auto rows = GhGenerateEvents(rng, gh, 5000, 2020, 2, 1);
      CITUSX_RETURN_IF_ERROR(
          conn.CopyIn("github_events", {}, std::move(rows)).status());
      // --- DW: TPC-H ---
      TpchConfig tpch;
      tpch.scale = 0.01;
      CITUSX_RETURN_IF_ERROR(TpchCreateSchema(conn, tpch));
      CITUSX_RETURN_IF_ERROR(TpchLoad(conn, tpch));

      mt_ms = MeasureMs(sim, conn,
                        "SELECT count(*), sum(total) FROM tenants_orders "
                        "WHERE tenant = 7");
      hc_ms = MeasureMs(sim, conn, "SELECT doc FROM objects WHERE key = 42");
      ra_ms = MeasureMs(sim, conn, GhDashboardQuery());
      dw_ms = MeasureMs(sim, conn, TpchQueries()[0].second, 2);

      // --- Table 2 capability checklist (executed live) ---
      struct Check {
        const char* name;
        std::function<Status()> fn;
      };
      std::vector<Check> checks = {
          {"co-located distributed join",
           [&] {
             return conn
                 .Query("SELECT count(*) FROM tenants_orders a JOIN "
                        "tenants_orders b ON a.tenant = b.tenant "
                        "WHERE a.tenant = 3")
                 .status();
           }},
          {"reference table join",
           [&] {
             return conn
                 .Query("SELECT count(*) FROM lineitem, nation WHERE "
                        "n_nationkey = 3")
                 .status();
           }},
          {"parallel distributed SELECT",
           [&] {
             return conn.Query("SELECT avg(total) FROM tenants_orders")
                 .status();
           }},
          {"parallel distributed DML",
           [&] {
             return conn
                 .Query("UPDATE tenants_orders SET total = total + 0")
                 .status();
           }},
          {"distributed transaction (2PC)",
           [&]() -> Status {
             CITUSX_RETURN_IF_ERROR(conn.Query("BEGIN").status());
             CITUSX_RETURN_IF_ERROR(
                 conn.Query("UPDATE objects SET doc = '{}'::jsonb WHERE key "
                            "= 1")
                     .status());
             CITUSX_RETURN_IF_ERROR(
                 conn.Query("UPDATE objects SET doc = '{}'::jsonb WHERE key "
                            "= 2")
                     .status());
             return conn.Query("COMMIT").status();
           }},
          {"distributed schema change",
           [&] {
             return conn.Query("CREATE INDEX obj_doc ON objects (doc)")
                 .status();
           }},
          {"non-co-located join (repartition)",
           [&] {
             return conn
                 .Query("SELECT count(*) FROM tenants_orders t JOIN objects o "
                        "ON t.id = o.key")
                 .status();
           }},
      };
      std::printf("\nTable 2 capability checklist (Citus 4+1):\n");
      for (auto& c : checks) {
        Status st = c.fn();
        capabilities_ok &= st.ok();
        std::printf("  [%s] %s%s\n", st.ok() ? "x" : " ", c.name,
                    st.ok() ? "" : (" -- " + st.ToString()).c_str());
      }
      return Status::OK();
    });
    std::printf("\nTable 1 latency characterization (measured on Citus 4+1):\n");
    std::printf("  %-28s %14s %16s\n", "pattern", "paper target",
                "measured (ms)");
    std::printf("  %-28s %14s %16.2f\n", "multi-tenant (router)", "~10ms",
                mt_ms);
    std::printf("  %-28s %14s %16.2f\n", "real-time analytics", "~100ms",
                ra_ms);
    std::printf("  %-28s %14s %16.2f\n", "high-performance CRUD", "~1ms",
                hc_ms);
    std::printf("  %-28s %14s %16.2f\n", "data warehousing (Q1)", "~10s+",
                dw_ms);
    if (!capabilities_ok) {
      std::printf("\nWARNING: some Table 2 capabilities failed.\n");
      return;
    }
  });
  return 0;
}
