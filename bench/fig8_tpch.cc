// Figure 8: data warehousing benchmark — queries from TPC-H, reported as
// queries per hour for one session running the full supported set.
//
// Paper: scale factor 100 (~135GB), lineitem and orders co-located by order
// key, smaller tables as reference tables; two orders of magnitude speedup
// at 8+1 vs a single PostgreSQL server (CPU-parallel + memory-fit vs an
// I/O-bound single node). Here: scaled so a 16MB-per-node buffer pool shows
// the same crossover.
#include "bench_common.h"
#include "workload/tpch.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

int main() {
  PrintHeader("Data warehousing benchmark: queries from TPC-H", "Figure 8");
  sim::CostModel cost;
  cost.buffer_pool_bytes = 16LL << 20;

  TpchConfig config;
  config.scale = 0.3;  // ~45k orders, ~180k lineitems: spills a 16MB pool

  std::printf("%-12s %16s %14s\n", "setup", "total time (s)",
              "queries/hour");
  for (const Setup& setup : PaperSetups()) {
    TpchConfig cfg = config;
    cfg.use_citus = setup.install_citus;
    // Shards stored columnar: the timed runs go through the vectorized
    // executor's columnar read path (§5's columnar + parallel-query story).
    cfg.columnar = setup.install_citus;
    WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                    citus::Deployment& deploy) {
      double total_s = 0;
      int queries = 0;
      MustRun(sim, [&]() -> Status {
        auto conn_r = deploy.Connect();
        if (!conn_r.ok()) return conn_r.status();
        net::Connection& conn = **conn_r;
        CITUSX_RETURN_IF_ERROR(TpchCreateSchema(conn, cfg));
        CITUSX_RETURN_IF_ERROR(TpchLoad(conn, cfg));
        // Untimed oracle pass: every query must give the same answer
        // through the volcano executor as through the vectorized one.
        if (setup.install_citus) {
          for (const auto& [name, sql] : TpchQueries()) {
            CITUSX_RETURN_IF_ERROR(
                conn.Query("SET citus.use_vectorized_executor = 'off'")
                    .status());
            auto oracle = conn.Query(sql);
            if (!oracle.ok()) return oracle.status();
            CITUSX_RETURN_IF_ERROR(
                conn.Query("SET citus.use_vectorized_executor = 'on'")
                    .status());
            auto vec = conn.Query(sql);
            if (!vec.ok()) return vec.status();
            if (!ApproxEqualResults(*oracle, *vec)) {
              return Status::Internal(
                  name + ": vectorized result differs from volcano oracle");
            }
          }
        }
        sim::Time t0 = deploy.sim()->now();
        for (const auto& [name, sql] : TpchQueries()) {
          auto r = conn.Query(sql);
          if (!r.ok()) {
            return Status(r.status().code(),
                          name + ": " + r.status().message());
          }
          queries++;
        }
        total_s = static_cast<double>(deploy.sim()->now() - t0) / 1e9;
        return Status::OK();
      });
      double qph = total_s > 0 ? queries * 3600.0 / total_s : 0;
      std::printf("%-12s %16.2f %14.0f\n", setup.name.c_str(), total_s, qph);
    });
  }
  std::printf("\nNote: %zu TPC-H queries supported by the dialect "
              "(Q1,Q3,Q5,Q6,Q7,Q10,Q12,Q14,Q19), one session; Citus setups "
              "use columnar\nshards + the vectorized executor, cross-checked "
              "per query against the volcano oracle.\n",
              TpchQueries().size());
  return 0;
}
