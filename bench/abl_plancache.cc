// Ablation: the distributed plan cache (PREPARE/EXECUTE hot path).
//
// A CRUD application issues the same single-shard statements millions of
// times with different parameters. Without the plan cache every EXECUTE
// re-runs the fast-path planner on the coordinator and the local planner on
// the worker; with it, the coordinator re-binds parameters into the cached
// distributed plan (plan_cached_bind) and the worker executes a server-side
// prepared statement. This bench runs the same 90/10 read/update key-value
// workload with the cache on and off and reports the throughput ratio.
//
// The cost model uses a rack-local RTT so that planning CPU — the thing the
// cache removes — is visible next to the network; with the default 500 us
// same-region RTT the network dominates both modes and hides the effect.
//
//   abl_plancache [--quick] [--json=<path>] [--no-plan-cache]
//
// --no-plan-cache runs only the ablated configuration (for manual A/B runs);
// by default both configurations run and the speedup is checked (>= 2x).
#include <cstring>

#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;

namespace {

struct ModeResult {
  double tps = 0;
  LatencyTriple latency;
  int64_t errors = 0;
  int64_t hits = 0;
  int64_t misses = 0;
};

Status LoadRows(citus::Deployment& deploy, int64_t rows) {
  auto conn_r = deploy.Connect();
  if (!conn_r.ok()) return conn_r.status();
  net::Connection& conn = **conn_r;
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE kv (key bigint PRIMARY KEY, v text)").status());
  CITUSX_RETURN_IF_ERROR(
      conn.Query("SELECT create_distributed_table('kv', 'key')").status());
  std::vector<std::vector<std::string>> batch;
  for (int64_t i = 0; i < rows; i++) {
    batch.push_back({std::to_string(i), StrFormat("value-%lld",
                                                  static_cast<long long>(i))});
    if (batch.size() == 5000) {
      CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    CITUSX_RETURN_IF_ERROR(conn.CopyIn("kv", {}, std::move(batch)).status());
  }
  return Status::OK();
}

// `update_pct` percent of operations are single-shard UPDATEs; the rest are
// single-shard SELECTs. The read-only workload (update_pct = 0, pgbench -S
// style) is the headline number: it isolates planning cost, which is what
// the cache removes. Writes add a WAL commit flush that is identical in
// both modes and dilutes the ratio.
ModeResult RunMode(bool plan_cache, bool quick, int update_pct) {
  sim::CostModel cost;
  cost.net_rtt = 20 * sim::kMicrosecond;  // rack-local / unix-socket proxy
  cost.buffer_pool_bytes = 256LL << 20;   // keep disk I/O out of the picture

  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 2;
  options.cost = cost;
  options.citus.enable_plan_cache = plan_cache;
  citus::Deployment deploy(&sim, options);

  const int64_t rows = quick ? 2000 : 20000;
  MustRun(sim, [&] { return LoadRows(deploy, rows); });

  workload::DriverOptions dopts;
  dopts.clients = quick ? 8 : 16;
  dopts.warmup = (quick ? 200 : 1000) * sim::kMillisecond;
  dopts.duration = (quick ? 1 : 3) * sim::kSecond;
  dopts.sleep_between = 0;  // closed loop: throughput == service rate

  std::vector<char> prepared(static_cast<size_t>(dopts.clients), 0);
  workload::DriverResult r = workload::RunDriver(
      &sim, &deploy.cluster().directory(), dopts,
      [&](net::Connection& conn, int client_id, Rng& rng) -> Status {
        if (!prepared[static_cast<size_t>(client_id)]) {
          CITUSX_RETURN_IF_ERROR(
              conn.Query("PREPARE sel (bigint) AS "
                         "SELECT v FROM kv WHERE key = $1")
                  .status());
          CITUSX_RETURN_IF_ERROR(
              conn.Query("PREPARE upd (bigint, text) AS "
                         "UPDATE kv SET v = $2 WHERE key = $1")
                  .status());
          prepared[static_cast<size_t>(client_id)] = 1;
        }
        int64_t key = static_cast<int64_t>(rng.Next() % rows);
        if (update_pct > 0 &&
            static_cast<int>(rng.Next() % 100) < update_pct) {
          return conn
              .Query(StrFormat("EXECUTE upd (%lld, 'v-%lld')",
                               static_cast<long long>(key),
                               static_cast<long long>(rng.Next() % 1000)))
              .status();
        }
        return conn
            .Query(StrFormat("EXECUTE sel (%lld)",
                             static_cast<long long>(key)))
            .status();
      });

  ModeResult out;
  out.tps = r.PerSecond();
  out.latency = Percentiles(r.latency);
  out.errors = r.fatal_errors;
  const obs::Metrics& m = deploy.coordinator()->metrics();
  out.hits = m.CounterValue("citus.plancache.hit");
  out.misses = m.CounterValue("citus.plancache.miss");
  sim.Shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --no-plan-cache is ours; strip it before the shared parser (which exits
  // on unknown flags).
  bool only_ablated = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--no-plan-cache") == 0) {
      only_ablated = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchArgs args = ParseBenchArgs(static_cast<int>(rest.size()), rest.data());

  PrintHeader("Ablation: distributed plan cache on the CRUD hot path",
              "design choice from DESIGN.md; cf. paper §3.5 planner tiers");
  std::printf("%-16s %-12s %12s %10s %10s %10s %12s %12s\n", "workload",
              "plan cache", "tps", "p50 (ms)", "p95 (ms)", "p99 (ms)",
              "cache hits", "misses");

  BenchReport report("abl_plancache");
  auto add_row = [&](const char* workload, bool cached, const ModeResult& m) {
    std::printf("%-16s %-12s %12.0f %10.3f %10.3f %10.3f %12lld %12lld\n",
                workload, cached ? "on" : "off", m.tps, m.latency.p50_ms,
                m.latency.p95_ms, m.latency.p99_ms,
                static_cast<long long>(m.hits),
                static_cast<long long>(m.misses));
    report.AddResult(
        {{"workload", sql::Json::MakeString(workload)},
         {"plan_cache", sql::Json::MakeBool(cached)},
         {"tps", sql::Json::MakeNumber(m.tps)},
         {"p50_ms", sql::Json::MakeNumber(m.latency.p50_ms)},
         {"p95_ms", sql::Json::MakeNumber(m.latency.p95_ms)},
         {"p99_ms", sql::Json::MakeNumber(m.latency.p99_ms)},
         {"errors", sql::Json::MakeNumber(static_cast<double>(m.errors))},
         {"plancache_hits",
          sql::Json::MakeNumber(static_cast<double>(m.hits))},
         {"plancache_misses",
          sql::Json::MakeNumber(static_cast<double>(m.misses))}});
  };
  auto check_errors = [](const char* label, const ModeResult& m) {
    if (m.errors > 0) {
      std::fprintf(stderr, "FAIL: %lld errors in the %s run\n",
                   static_cast<long long>(m.errors), label);
      std::exit(1);
    }
  };

  // Headline: single-shard reads (pgbench -S style) — planning dominates.
  ModeResult off = RunMode(/*plan_cache=*/false, args.quick, /*update_pct=*/0);
  add_row("reads", false, off);
  check_errors("no-plan-cache reads", off);
  if (only_ablated) {
    report.WriteTo(args.json_path);
    return 0;
  }
  ModeResult on = RunMode(/*plan_cache=*/true, args.quick, /*update_pct=*/0);
  add_row("reads", true, on);
  check_errors("plan-cache reads", on);

  // Context: 90/10 read/update mix. The per-op WAL commit flush on writes is
  // identical in both modes, so the ratio here is expected to be lower.
  ModeResult moff =
      RunMode(/*plan_cache=*/false, args.quick, /*update_pct=*/10);
  add_row("mixed-90/10", false, moff);
  check_errors("no-plan-cache mixed", moff);
  ModeResult mon = RunMode(/*plan_cache=*/true, args.quick, /*update_pct=*/10);
  add_row("mixed-90/10", true, mon);
  check_errors("plan-cache mixed", mon);

  double speedup = off.tps > 0 ? on.tps / off.tps : 0;
  double mixed_speedup = moff.tps > 0 ? mon.tps / moff.tps : 0;
  std::printf("\nSpeedup (cached / uncached): reads %.2fx, mixed %.2fx\n",
              speedup, mixed_speedup);
  report.AddResult({{"speedup", sql::Json::MakeNumber(speedup)},
                    {"mixed_speedup", sql::Json::MakeNumber(mixed_speedup)}});
  if (!report.WriteTo(args.json_path)) return 1;

  if (on.hits == 0 || on.misses == 0) {
    std::fprintf(stderr, "FAIL: plan cache not exercised (hits=%lld "
                 "misses=%lld)\n", static_cast<long long>(on.hits),
                 static_cast<long long>(on.misses));
    return 1;
  }
  if (off.hits != 0) {
    std::fprintf(stderr, "FAIL: ablated run reported cache hits (%lld)\n",
                 static_cast<long long>(off.hits));
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: expected >= 2x single-shard read throughput "
                 "with the plan cache, got %.2fx\n", speedup);
    return 1;
  }
  std::printf("PASS: plan cache delivers %.2fx on the single-shard read "
              "path (%.2fx with 10%% updates).\n", speedup, mixed_speedup);
  return 0;
}
