// Ablation: the vectorized morsel-driven executor (src/exec, DESIGN.md §8).
//
// Two sections, both run once through the volcano row-at-a-time oracle
// (citus.use_vectorized_executor = off) and once through the vectorized
// executor, over identical data in the same deployment:
//  1. the supported TPC-H query set on a Citus 4+1 deployment with columnar
//     shards — end-to-end distributed latency, where the fan-out of ~32
//     shard tasks puts a network floor under both executors;
//  2. scan/agg-heavy queries on a local columnar table — the executor in
//     isolation, where the >= 10x batching + morsel-parallelism claim is
//     measurable.
// Diffs every result against the oracle and self-checks the two claims the
// tentpole makes: results are identical everywhere, and the scan/agg-heavy
// queries speed up by >= 10x in virtual time.
//
//   abl_olap [--quick] [--json=<path>]
#include "bench_common.h"
#include "common/str.h"
#include "workload/tpch.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

namespace {

struct QueryRow {
  std::string name;
  double volcano_ms = 0;
  double vectorized_ms = 0;
  size_t rows = 0;
  bool matched = false;
  double Speedup() const {
    return vectorized_ms > 0 ? volcano_ms / vectorized_ms : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  PrintHeader("Ablation: vectorized morsel-driven executor (src/exec)",
              "design choice from DESIGN.md §8");

  sim::CostModel cost;
  // A large pool keeps block I/O out of the picture: this ablation isolates
  // executor CPU, not the memory-fit story (that is figure 8's job).
  cost.buffer_pool_bytes = 256LL << 20;
  TpchConfig cfg;
  cfg.scale = args.quick ? 0.1 : 0.3;
  cfg.columnar = true;

  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 4;
  options.cost = cost;
  citus::Deployment deploy(&sim, options);
  MustRun(sim, [&]() -> Status {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return conn_r.status();
    CITUSX_RETURN_IF_ERROR(TpchCreateSchema(**conn_r, cfg));
    return TpchLoad(**conn_r, cfg);
  });

  std::vector<QueryRow> rows;
  std::vector<QueryRow> scan_rows;
  MustRun(sim, [&]() -> Status {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return conn_r.status();
    net::Connection& conn = **conn_r;
    auto diff_timed = [&](const std::string& name, const std::string& sql,
                          std::vector<QueryRow>* out) -> Status {
      QueryRow row;
      row.name = name;
      // Untimed warm-up pass so both timed runs see a warm buffer pool.
      CITUSX_RETURN_IF_ERROR(conn.Query(sql).status());

      CITUSX_RETURN_IF_ERROR(
          conn.Query("SET citus.use_vectorized_executor = 'off'").status());
      sim::Time t0 = sim.now();
      auto oracle = conn.Query(sql);
      if (!oracle.ok()) return oracle.status();
      row.volcano_ms = Ms(sim.now() - t0);

      CITUSX_RETURN_IF_ERROR(
          conn.Query("SET citus.use_vectorized_executor = 'on'").status());
      t0 = sim.now();
      auto vec = conn.Query(sql);
      if (!vec.ok()) return vec.status();
      row.vectorized_ms = Ms(sim.now() - t0);

      row.rows = vec->rows.size();
      row.matched = ApproxEqualResults(*oracle, *vec);
      out->push_back(std::move(row));
      return Status::OK();
    };

    for (const auto& [name, sql] : TpchQueries()) {
      CITUSX_RETURN_IF_ERROR(diff_timed(name, sql, &rows));
    }

    // Section 2: a local columnar table on the coordinator — no shard
    // fan-out, so the per-row executor cost is the whole latency.
    const int64_t scan_n = args.quick ? 60000 : 200000;
    CITUSX_RETURN_IF_ERROR(
        conn.Query("CREATE TABLE scanagg (k bigint, v1 bigint, "
                   "v2 double precision, g bigint) USING columnar")
            .status());
    std::vector<std::vector<std::string>> batch;
    for (int64_t i = 0; i < scan_n; i++) {
      batch.push_back({std::to_string(i), std::to_string(i % 1000),
                       StrFormat("%lld.5", static_cast<long long>(i % 97)),
                       std::to_string(i % 16)});
      if (batch.size() == 10000) {
        CITUSX_RETURN_IF_ERROR(
            conn.CopyIn("scanagg", {}, std::move(batch)).status());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      CITUSX_RETURN_IF_ERROR(
          conn.CopyIn("scanagg", {}, std::move(batch)).status());
    }
    CITUSX_RETURN_IF_ERROR(diff_timed(
        "scan_filter_agg",
        "SELECT count(*), sum(v1), avg(v2) FROM scanagg WHERE v1 > 10",
        &scan_rows));
    CITUSX_RETURN_IF_ERROR(diff_timed(
        "group_agg",
        "SELECT g, count(*), sum(v1), max(v2) FROM scanagg GROUP BY g "
        "ORDER BY g",
        &scan_rows));
    return Status::OK();
  });

  auto print_section = [](const char* title,
                          const std::vector<QueryRow>& section) {
    std::printf("\n%s\n", title);
    std::printf("%-16s %16s %18s %10s %8s %8s\n", "query", "volcano (ms)",
                "vectorized (ms)", "speedup", "rows", "match");
    for (const QueryRow& r : section) {
      std::printf("%-16s %16.3f %18.3f %9.1fx %8zu %8s\n", r.name.c_str(),
                  r.volcano_ms, r.vectorized_ms, r.Speedup(), r.rows,
                  r.matched ? "yes" : "NO");
    }
  };
  print_section("TPC-H, distributed (columnar shards, 4 workers):", rows);
  print_section("Scan/agg-heavy, local columnar table (executor isolated):",
                scan_rows);

  BenchReport report("abl_olap");
  auto add_section = [&](const char* section,
                         const std::vector<QueryRow>& qs) {
    for (const QueryRow& r : qs) {
      report.AddResult({
          {"section", sql::Json::MakeString(section)},
          {"query", sql::Json::MakeString(r.name)},
          {"volcano_ms", sql::Json::MakeNumber(r.volcano_ms)},
          {"vectorized_ms", sql::Json::MakeNumber(r.vectorized_ms)},
          {"speedup", sql::Json::MakeNumber(r.Speedup())},
          {"rows", sql::Json::MakeNumber(static_cast<double>(r.rows))},
          {"matched", sql::Json::MakeBool(r.matched)},
      });
    }
  };
  add_section("tpch_distributed", rows);
  add_section("scanagg_local", scan_rows);
  report.AddMetrics("coordinator", deploy.coordinator()->metrics());
  if (!report.WriteTo(args.json_path)) return 1;
  sim.Shutdown();

  // Self-checks: a wrong answer or a lost speedup is a regression, not a
  // different data point.
  bool failed = false;
  for (const std::vector<QueryRow>* section : {&rows, &scan_rows}) {
    for (const QueryRow& r : *section) {
      if (!r.matched) {
        std::fprintf(stderr, "FAIL: %s differs between executors\n",
                     r.name.c_str());
        failed = true;
      }
      if (r.rows == 0) {
        std::fprintf(stderr, "FAIL: %s returned no rows\n", r.name.c_str());
        failed = true;
      }
    }
  }
  for (const QueryRow& r : scan_rows) {
    if (r.Speedup() < 10.0) {
      std::fprintf(stderr,
                   "FAIL: %s (scan/agg-heavy) sped up only %.1fx, "
                   "expected >= 10x\n",
                   r.name.c_str(), r.Speedup());
      failed = true;
    }
  }
  for (const QueryRow& r : rows) {
    if (r.Speedup() < 1.0) {
      std::fprintf(stderr,
                   "FAIL: %s slower vectorized (%.1fx) — the distributed "
                   "path must never regress\n",
                   r.name.c_str(), r.Speedup());
      failed = true;
    }
  }
  if (failed) return 1;
  std::printf("\nSelf-check passed: every query matches the volcano oracle; "
              "scan/agg-heavy queries >= 10x faster vectorized.\n");
  return 0;
}
