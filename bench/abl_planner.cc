// Ablation A: per-tier distributed planning overhead (the rationale for the
// four-planner design in §3.5) plus real-CPU microbenchmarks of the code
// paths the planner exercises, via google-benchmark.
//
// The virtual planning charges come from sim::CostModel; the real-time
// numbers here measure the actual C++ implementation (parse, deparse,
// shard pruning, expression evaluation), which is what a production build
// would pay per query.
#include <benchmark/benchmark.h>

#include "citus/metadata.h"
#include "common/hash.h"
#include "sql/deparser.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "storage/index.h"

using namespace citusx;

namespace {

void BM_ParseFastPathQuery(benchmark::State& state) {
  const std::string sql = "SELECT v FROM kv WHERE key = 12345";
  for (auto _ : state) {
    auto r = sql::Parse(sql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseFastPathQuery);

void BM_ParseAnalyticalQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity), "
      "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)), avg(l_discount) "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' "
      "DAY GROUP BY l_returnflag, l_linestatus ORDER BY 1, 2";
  for (auto _ : state) {
    auto r = sql::Parse(sql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseAnalyticalQuery);

void BM_DeparseWithShardMap(benchmark::State& state) {
  auto stmt = sql::Parse(
      "SELECT o.total, c.name FROM orders o JOIN customers c ON "
      "o.tenant = c.tenant WHERE o.tenant = 42 ORDER BY o.total DESC LIMIT 5");
  std::map<std::string, std::string> map = {{"orders", "orders_102011"},
                                            {"customers", "customers_102043"}};
  sql::DeparseOptions opts;
  opts.table_map = &map;
  for (auto _ : state) {
    std::string out = sql::DeparseStatement(*stmt, opts);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DeparseWithShardMap);

void BM_ShardPruning(benchmark::State& state) {
  citus::CitusTable table;
  table.dist_col_type = sql::TypeId::kInt8;
  auto intervals = citus::MakeHashIntervals(32);
  for (size_t i = 0; i < intervals.size(); i++) {
    citus::ShardInterval si;
    si.shard_id = 102008 + i;
    si.min_hash = intervals[i].first;
    si.max_hash = intervals[i].second;
    table.shards.push_back(si);
  }
  int64_t key = 0;
  for (auto _ : state) {
    int idx = table.ShardIndexForHash(sql::Datum::Int8(key++).PartitionHash());
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_ShardPruning);

void BM_EvalRouterPredicate(benchmark::State& state) {
  auto expr = sql::ParseExpression("key = 12345 AND v > 17");
  sql::Row row = {sql::Datum::Int8(12345), sql::Datum::Int8(20)};
  sql::WalkExprMut(*expr, [](sql::Expr& e) {
    if (e.kind == sql::ExprKind::kColumnRef) {
      e.slot = e.column == "key" ? 0 : 1;
    }
  });
  sql::EvalContext ctx;
  ctx.row = &row;
  for (auto _ : state) {
    auto r = sql::EvalPredicate(**expr, ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalRouterPredicate);

void BM_TrigramExtraction(benchmark::State& state) {
  const std::string text =
      "fix postgres bug in the distributed query planner and executor";
  for (auto _ : state) {
    auto trigrams = storage::GinTrgmIndex::ExtractTrigrams(text);
    benchmark::DoNotOptimize(trigrams);
  }
}
BENCHMARK(BM_TrigramExtraction);

void BM_LikeMatch(benchmark::State& state) {
  const std::string text =
      "refactor commit touching the postgres planner internals";
  for (auto _ : state) {
    bool m = sql::LikeMatch(text, "%postgres%", true);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_LikeMatch);

void BM_JsonParseEvent(benchmark::State& state) {
  const std::string json =
      R"({"type":"PushEvent","created_at":"2020-02-01T10:00:00Z",)"
      R"("actor":{"login":"user1"},"repo":{"name":"org/repo"},)"
      R"("payload":{"size":2,"commits":[{"sha":"abc","message":"fix bug"},)"
      R"({"sha":"def","message":"update postgres docs"}]}})";
  for (auto _ : state) {
    auto r = sql::Json::Parse(json);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JsonParseEvent);

void BM_PartitionHashInt(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashInt64(k++));
  }
}
BENCHMARK(BM_PartitionHashInt);

}  // namespace

BENCHMARK_MAIN();
