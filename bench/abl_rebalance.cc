// Ablation C: shard rebalancer policies (§3.4): shard-count vs disk-size
// balancing, plus the write-blocked window of a shard move ("minimal write
// downtime").
#include "citus/rebalancer.h"

#include "bench_common.h"
#include "common/str.h"

using namespace citusx;
using namespace citusx::bench;

namespace {

void PrintDistribution(citus::Deployment& deploy, const char* label) {
  const citus::CitusTable* t = deploy.metadata().Find("skewed");
  std::map<std::string, int> shard_count;
  std::map<std::string, int64_t> rows;
  for (const auto& s : t->shards) {
    shard_count[s.placement]++;
    engine::Node* n = deploy.cluster().directory().Find(s.placement);
    engine::TableInfo* info = n->catalog().Find(t->ShardName(s.shard_id));
    if (info != nullptr && info->heap != nullptr) {
      rows[s.placement] += static_cast<int64_t>(info->heap->num_rows());
    }
  }
  std::printf("  %-18s", label);
  for (const auto& [w, c] : shard_count) {
    std::printf(" %s: %2d shards / %6lld rows;", w.c_str(), c,
                static_cast<long long>(rows[w]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("Ablation: shard rebalancer policies (§3.4)", "DESIGN.md");
  for (auto strategy : {citus::RebalanceStrategy::kByShardCount,
                        citus::RebalanceStrategy::kByDiskSize}) {
    sim::Simulation sim;
    citus::DeploymentOptions options;
    options.num_workers = 3;
    citus::Deployment deploy(&sim, options);
    std::printf("\npolicy: %s\n",
                strategy == citus::RebalanceStrategy::kByShardCount
                    ? "by_shard_count"
                    : "by_disk_size");
    MustRun(sim, [&]() -> Status {
      auto conn_r = deploy.Connect();
      if (!conn_r.ok()) return conn_r.status();
      net::Connection& conn = **conn_r;
      CITUSX_RETURN_IF_ERROR(
          conn.Query("CREATE TABLE skewed (k bigint, pad text)").status());
      CITUSX_RETURN_IF_ERROR(
          conn.Query("SELECT create_distributed_table('skewed', 'k')")
              .status());
      std::vector<std::vector<std::string>> rows;
      for (int64_t i = 0; i < 30000; i++) {
        rows.push_back({std::to_string(i), std::string(64, 'y')});
        if (rows.size() == 10000) {
          CITUSX_RETURN_IF_ERROR(
              conn.CopyIn("skewed", {}, std::move(rows)).status());
          rows.clear();
        }
      }
      if (!rows.empty()) {
        CITUSX_RETURN_IF_ERROR(
            conn.CopyIn("skewed", {}, std::move(rows)).status());
      }
      // Skew: cram everything onto worker1 (simulating shrink-then-grow).
      citus::Rebalancer rebalancer(deploy.extension(deploy.coordinator()));
      auto session = deploy.coordinator()->OpenSession();
      citus::CitusTable* t = deploy.metadata().Find("skewed");
      std::vector<std::pair<uint64_t, std::string>> moves;
      for (const auto& s : t->shards) {
        if (s.placement != "worker1") moves.emplace_back(s.shard_id, s.placement);
      }
      for (const auto& [sid, from] : moves) {
        CITUSX_RETURN_IF_ERROR(rebalancer.MoveShard(*session, sid, from,
                                                    "worker1"));
      }
      return Status::OK();
    });
    PrintDistribution(deploy, "before rebalance:");
    int moves = 0;
    MustRun(sim, [&]() -> Status {
      citus::Rebalancer rebalancer(deploy.extension(deploy.coordinator()));
      auto session = deploy.coordinator()->OpenSession();
      sim::Time t0 = sim.now();
      CITUSX_ASSIGN_OR_RETURN(moves, rebalancer.Rebalance(*session, strategy));
      std::printf("  rebalance: %d moves in %.2f s (virtual), last move "
                  "blocked writes for %.1f ms\n",
                  moves, static_cast<double>(sim.now() - t0) / 1e9,
                  static_cast<double>(rebalancer.last_move_blocked_time) / 1e6);
      return Status::OK();
    });
    PrintDistribution(deploy, "after rebalance:");
    sim.Shutdown();
  }
  std::printf("\nExpected: both policies even out the placement; the write-"
              "blocked window per move stays\nsmall relative to the copy "
              "phase (the paper's 'minimal write downtime').\n");
  return 0;
}
