// Figure 6: HammerDB TPC-C-derived benchmark.
//
// Paper: 500 warehouses (~100GB), 250 vusers, 1ms keying time, items as a
// reference table, all other tables co-located by warehouse id, stored
// procedures delegated by warehouse id. Here: scaled to 40 warehouses with a
// 16MB buffer pool per node so the single-node working set spills to disk
// while Citus 4+1 holds it in memory.
//
// Expected shape (paper): Citus 0+1 slightly below PostgreSQL (planning
// overhead); Citus 4+1 ~an order of magnitude above PostgreSQL (memory fit);
// 4 -> 8 slightly sublinear (the ~7% multi-node transactions keep their
// round-trip-bound response times).
#include "bench_common.h"
#include "workload/tpcc.h"

using namespace citusx;
using namespace citusx::bench;
using namespace citusx::workload;

int main() {
  PrintHeader("Multi-tenant benchmark: HammerDB TPC-C derivative", "Figure 6");

  TpccConfig config;
  config.warehouses = 40;
  config.items = 1000;
  config.customers_per_district = 60;
  config.orders_per_district = 60;

  sim::CostModel cost;
  cost.buffer_pool_bytes = 16LL << 20;
  // Delegated procedures open worker-to-worker connections for the ~7%
  // cross-warehouse transactions (the §3.2.1 connection amplification);
  // production deployments raise max_connections / add PgBouncer.
  cost.max_connections = 2000;

  std::printf("%-12s %10s %10s %12s %12s %12s\n", "setup", "NOPM", "TPM",
              "p50 (ms)", "p95 (ms)", "p99 (ms)");
  for (const Setup& setup : PaperSetups()) {
    TpccConfig cfg = config;
    cfg.use_citus = setup.install_citus;
    WithDeployment(setup, cost, [&](sim::Simulation& sim,
                                    citus::Deployment& deploy) {
      for (size_t i = 0; i < deploy.cluster().num_nodes(); i++) {
        TpccRegisterProcedures(deploy.cluster().node(i), cfg);
      }
      MustRun(sim, [&]() -> Status {
        auto conn = deploy.Connect();
        if (!conn.ok()) return conn.status();
        CITUSX_RETURN_IF_ERROR(TpccCreateSchema(**conn, cfg));
        CITUSX_RETURN_IF_ERROR(TpccLoad(**conn, cfg, 1, cfg.warehouses));
        if (cfg.use_citus) {
          CITUSX_RETURN_IF_ERROR(TpccDistributeProcedures(**conn));
        }
        return Status::OK();
      });
      // Warmup phase (populates caches), then the measured run.
      DriverOptions warm;
      warm.clients = 120;
      warm.warmup = 0;
      warm.duration = 1500 * sim::kMillisecond;
      warm.sleep_between = sim::kMillisecond;
      RunDriver(&sim, &deploy.cluster().directory(), warm, TpccMix(cfg));

      int64_t neworders_before = GlobalTpccCounters().new_orders;
      DriverOptions opts = warm;
      opts.duration = 4 * sim::kSecond;
      DriverResult r =
          RunDriver(&sim, &deploy.cluster().directory(), opts, TpccMix(cfg));
      int64_t neworders = GlobalTpccCounters().new_orders - neworders_before;
      double nopm = static_cast<double>(neworders) * 60e9 /
                    static_cast<double>(opts.duration);
      LatencyTriple lat = Percentiles(r.latency);
      std::printf("%-12s %10.0f %10.0f %12.2f %12.2f %12.2f\n",
                  setup.name.c_str(), nopm, r.PerMinute(), lat.p50_ms,
                  lat.p95_ms, lat.p99_ms);
      std::fflush(stdout);
      if (r.fatal_errors > 0) {
        std::printf("  (%lld errors: %s)\n",
                    static_cast<long long>(r.fatal_errors), r.last_error.c_str());
      }
    });
  }
  std::printf("\nNote: NOPM = new-order transactions per minute. TPM counts "
              "all transaction types.\n");
  return 0;
}
