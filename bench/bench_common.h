// Shared benchmark scaffolding: the paper's four configurations
// (PostgreSQL, Citus 0+1, Citus 4+1, Citus 8+1) and result-table printing.
//
// All times are *simulated*: nodes have 16 cores, a 7500-IOPS disk, and a
// buffer pool sized per benchmark so that the single-node working set does
// not fit in memory but the 4-worker cluster's does (§4: "Each benchmark is
// structured such that a single server cannot keep all the data in memory,
// but Citus 4+1 can").
#ifndef CITUSX_BENCH_BENCH_COMMON_H_
#define CITUSX_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "citus/deploy.h"
#include "obs/metrics.h"
#include "sql/json.h"
#include "workload/driver.h"

namespace citusx::bench {

struct Setup {
  std::string name;
  int workers = 0;
  bool install_citus = true;
};

/// The four configurations from §4.
inline std::vector<Setup> PaperSetups() {
  return {
      {"PostgreSQL", 0, false},
      {"Citus 0+1", 0, true},
      {"Citus 4+1", 4, true},
      {"Citus 8+1", 8, true},
  };
}

/// Run `body(sim, deployment)` for one setup in a fresh simulation.
inline void WithDeployment(
    const Setup& setup, const sim::CostModel& cost,
    const std::function<void(sim::Simulation&, citus::Deployment&)>& body) {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = setup.workers;
  options.install_citus = setup.install_citus;
  options.cost = cost;
  citus::Deployment deploy(&sim, options);
  body(sim, deploy);
  sim.Shutdown();
}

/// Run a setup step inside the simulation and propagate failures loudly.
inline void MustRun(sim::Simulation& sim, const std::function<Status()>& fn) {
  Status status;
  sim.Spawn("bench_setup", [&] { status = fn(); });
  sim.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
}

inline void PrintHeader(const char* title, const char* figure) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s; virtual-time simulation, shapes not absolute"
              " numbers)\n", title, figure);
  std::printf("================================================================\n");
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Common command line of every bench binary:
///   --json=<path>  dump the figure's results (+ metric snapshots) as JSON
///   --quick        scaled-down run for smoke tests / CI
///   --seed=<n>     fault-injection / workload RNG seed (chaos benches)
struct BenchArgs {
  std::string json_path;
  bool quick = false;
  uint64_t seed = 42;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      args.json_path = a.substr(7);
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<uint64_t>(std::strtoull(a.c_str() + 7,
                                                      nullptr, 10));
    } else if (a == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s (expected --json=<path>, "
                   "--seed=<n>, or --quick)\n", a.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Approximate result equality for executor-differential checks: identical
/// shape, float8 cells within a relative tolerance (aggregation order
/// differs between the volcano and vectorized executors), everything else
/// exact.
inline bool ApproxEqualResults(const engine::QueryResult& a,
                               const engine::QueryResult& b,
                               double tol = 1e-6) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); i++) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t c = 0; c < a.rows[i].size(); c++) {
      const sql::Datum& x = a.rows[i][c];
      const sql::Datum& y = b.rows[i][c];
      if (x.is_null() || y.is_null()) {
        if (x.is_null() != y.is_null()) return false;
        continue;
      }
      if (x.type() == sql::TypeId::kFloat8 ||
          y.type() == sql::TypeId::kFloat8) {
        double dx = x.AsDouble(), dy = y.AsDouble();
        double scale = std::max({1.0, std::fabs(dx), std::fabs(dy)});
        if (std::fabs(dx - dy) > tol * scale) return false;
      } else if (sql::Datum::Compare(x, y) != 0) {
        return false;
      }
    }
  }
  return true;
}

/// The consistent latency summary every bench reports.
struct LatencyTriple {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

inline LatencyTriple Percentiles(const sim::Histogram& h) {
  LatencyTriple t;
  t.p50_ms = Ms(h.Percentile(50));
  t.p95_ms = Ms(h.Percentile(95));
  t.p99_ms = Ms(h.Percentile(99));
  return t;
}

inline void PrintLatencyTriple(const char* label, const sim::Histogram& h) {
  LatencyTriple t = Percentiles(h);
  std::printf("  %-18s p50=%.2f ms  p95=%.2f ms  p99=%.2f ms\n", label,
              t.p50_ms, t.p95_ms, t.p99_ms);
}

/// Accumulates one bench run's results and writes them as a JSON document:
/// {"bench": ..., "results": [...], "metrics": {"<scope>": [...]}}.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// One result row (a cell/line of the figure); key order is preserved.
  void AddResult(std::vector<std::pair<std::string, sql::JsonPtr>> kv) {
    results_.push_back(sql::Json::MakeObject(std::move(kv)));
  }

  /// Snapshot a node's metric registry under `scope` (e.g. "coordinator").
  void AddMetrics(const std::string& scope, const obs::Metrics& metrics) {
    std::vector<sql::JsonPtr> samples;
    for (const obs::MetricSample& s : metrics.Snapshot()) {
      std::vector<std::pair<std::string, sql::JsonPtr>> kv;
      kv.emplace_back("name", sql::Json::MakeString(s.name));
      kv.emplace_back("value",
                      sql::Json::MakeNumber(static_cast<double>(s.value)));
      if (s.kind == obs::MetricSample::Kind::kHistogram) {
        kv.emplace_back("sum",
                        sql::Json::MakeNumber(static_cast<double>(s.sum)));
        kv.emplace_back("p50_ms", sql::Json::MakeNumber(Ms(s.p50)));
        kv.emplace_back("p95_ms", sql::Json::MakeNumber(Ms(s.p95)));
        kv.emplace_back("p99_ms", sql::Json::MakeNumber(Ms(s.p99)));
      }
      samples.push_back(sql::Json::MakeObject(std::move(kv)));
    }
    metrics_.emplace_back(scope, sql::Json::MakeArray(std::move(samples)));
  }

  sql::JsonPtr ToJson() const {
    std::vector<std::pair<std::string, sql::JsonPtr>> top;
    top.emplace_back("bench", sql::Json::MakeString(name_));
    top.emplace_back("results", sql::Json::MakeArray(results_));
    top.emplace_back("metrics", sql::Json::MakeObject(metrics_));
    return sql::Json::MakeObject(std::move(top));
  }

  /// Write to `path` (no-op when empty). Returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string text = ToJson()->ToString();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("JSON results written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<sql::JsonPtr> results_;
  std::vector<std::pair<std::string, sql::JsonPtr>> metrics_;
};

}  // namespace citusx::bench

#endif  // CITUSX_BENCH_BENCH_COMMON_H_
