// Shared benchmark scaffolding: the paper's four configurations
// (PostgreSQL, Citus 0+1, Citus 4+1, Citus 8+1) and result-table printing.
//
// All times are *simulated*: nodes have 16 cores, a 7500-IOPS disk, and a
// buffer pool sized per benchmark so that the single-node working set does
// not fit in memory but the 4-worker cluster's does (§4: "Each benchmark is
// structured such that a single server cannot keep all the data in memory,
// but Citus 4+1 can").
#ifndef CITUSX_BENCH_BENCH_COMMON_H_
#define CITUSX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "citus/deploy.h"
#include "workload/driver.h"

namespace citusx::bench {

struct Setup {
  std::string name;
  int workers = 0;
  bool install_citus = true;
};

/// The four configurations from §4.
inline std::vector<Setup> PaperSetups() {
  return {
      {"PostgreSQL", 0, false},
      {"Citus 0+1", 0, true},
      {"Citus 4+1", 4, true},
      {"Citus 8+1", 8, true},
  };
}

/// Run `body(sim, deployment)` for one setup in a fresh simulation.
inline void WithDeployment(
    const Setup& setup, const sim::CostModel& cost,
    const std::function<void(sim::Simulation&, citus::Deployment&)>& body) {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = setup.workers;
  options.install_citus = setup.install_citus;
  options.cost = cost;
  citus::Deployment deploy(&sim, options);
  body(sim, deploy);
  sim.Shutdown();
}

/// Run a setup step inside the simulation and propagate failures loudly.
inline void MustRun(sim::Simulation& sim, const std::function<Status()>& fn) {
  Status status;
  sim.Spawn("bench_setup", [&] { status = fn(); });
  sim.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
}

inline void PrintHeader(const char* title, const char* figure) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s; virtual-time simulation, shapes not absolute"
              " numbers)\n", title, figure);
  std::printf("================================================================\n");
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace citusx::bench

#endif  // CITUSX_BENCH_BENCH_COMMON_H_
