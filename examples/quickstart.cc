// Quickstart: build a Citus cluster, distribute a table, and run routed and
// parallel queries — the 60-second tour of the public API.
//
//   sim::Simulation        virtual-time kernel everything runs in
//   citus::Deployment      coordinator + workers with the extension installed
//   net::Connection        a client connection speaking SQL
#include <cstdio>

#include "citus/deploy.h"

using namespace citusx;

int main() {
  // A coordinator plus 2 workers, default hardware model.
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 2;
  citus::Deployment deploy(&sim, options);

  sim.Spawn("app", [&] {
    auto conn_r = deploy.Connect();  // connect to the coordinator
    if (!conn_r.ok()) return;
    net::Connection& conn = **conn_r;
    auto run = [&](const std::string& sql) {
      auto r = conn.Query(sql);
      if (!r.ok()) {
        std::printf("!! %s\n   %s\n", sql.c_str(), r.status().ToString().c_str());
        return engine::QueryResult{};
      }
      return std::move(r).value();
    };

    // Create a regular table, then convert it to a distributed table
    // (hash-partitioned into shards spread over the workers).
    run("CREATE TABLE events (device_id bigint, payload text, metric double precision)");
    run("SELECT create_distributed_table('events', 'device_id')");

    // Inserts are routed to the right shard by hashing device_id.
    for (int i = 0; i < 100; i++) {
      run("INSERT INTO events VALUES (" + std::to_string(i % 10) + ", 'ping', " +
          std::to_string(i) + ".0)");
    }

    // A single-device query is routed to exactly one shard (fast path).
    auto routed = run("SELECT count(*), avg(metric) FROM events WHERE device_id = 3");
    std::printf("device 3: count=%lld avg=%.1f  (router planner: 1 shard)\n",
                static_cast<long long>(routed.rows[0][0].int_value()),
                routed.rows[0][1].float_value());

    // A global aggregate runs on every shard in parallel, then merges.
    auto global = run("SELECT count(*), avg(metric) FROM events");
    std::printf("all devices: count=%lld avg=%.1f  (pushdown planner: all shards)\n",
                static_cast<long long>(global.rows[0][0].int_value()),
                global.rows[0][1].float_value());

    // Per-device aggregation pushes down whole (GROUP BY distribution column).
    auto per_device =
        run("SELECT device_id, max(metric) FROM events GROUP BY device_id "
            "ORDER BY device_id LIMIT 3");
    for (const auto& row : per_device.rows) {
      std::printf("device %lld: max=%.1f\n",
                  static_cast<long long>(row[0].int_value()),
                  row[1].float_value());
    }
    std::printf("elapsed virtual time: %.1f ms\n",
                static_cast<double>(sim.now()) / 1e6);
  });
  sim.Run();
  sim.Shutdown();
  return 0;
}
