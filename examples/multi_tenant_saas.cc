// Multi-tenant SaaS example (paper §2.1): a shared-schema SaaS data model
// distributed by tenant id, with co-located joins, reference tables, routed
// tenant transactions, a cross-tenant analytical query, and a noisy-tenant
// shard move.
#include <cstdio>

#include "citus/deploy.h"
#include "citus/rebalancer.h"
#include "common/str.h"

using namespace citusx;

namespace {

engine::QueryResult Run(net::Connection& conn, const std::string& sql) {
  auto r = conn.Query(sql);
  if (!r.ok()) {
    std::printf("!! %s\n   %s\n", sql.c_str(), r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 4;
  citus::Deployment deploy(&sim, options);

  sim.Spawn("saas_app", [&] {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return;
    net::Connection& conn = **conn_r;

    // A classic SaaS schema: everything carries tenant_id and is co-located,
    // plans are shared across tenants (reference table).
    Run(conn,
        "CREATE TABLE accounts (tenant_id bigint, user_id bigint, email text, "
        "settings jsonb, PRIMARY KEY (tenant_id, user_id))");
    Run(conn,
        "CREATE TABLE projects (tenant_id bigint, project_id bigint, "
        "owner_id bigint, name text, PRIMARY KEY (tenant_id, project_id))");
    Run(conn,
        "CREATE TABLE tasks (tenant_id bigint, task_id bigint, "
        "project_id bigint, state text, hours double precision, "
        "PRIMARY KEY (tenant_id, task_id))");
    Run(conn, "CREATE TABLE plans (plan text PRIMARY KEY, max_projects bigint)");
    Run(conn, "SELECT create_distributed_table('accounts', 'tenant_id')");
    Run(conn,
        "SELECT create_distributed_table('projects', 'tenant_id', "
        "colocate_with := 'accounts')");
    Run(conn,
        "SELECT create_distributed_table('tasks', 'tenant_id', "
        "colocate_with := 'accounts')");
    Run(conn, "SELECT create_reference_table('plans')");
    Run(conn, "INSERT INTO plans VALUES ('free', 3), ('pro', 100)");

    // Onboard tenants: the per-tenant cost is one routed transaction.
    for (int t = 1; t <= 20; t++) {
      Run(conn, "BEGIN");
      Run(conn, StrFormat("INSERT INTO accounts VALUES (%d, 1, 'admin@t%d.io', "
                          "'{\"theme\": \"dark\"}'::jsonb)", t, t));
      for (int p = 1; p <= 3; p++) {
        Run(conn, StrFormat("INSERT INTO projects VALUES (%d, %d, 1, 'proj%d')",
                            t, p, p));
        for (int k = 1; k <= 5; k++) {
          Run(conn, StrFormat(
                        "INSERT INTO tasks VALUES (%d, %d, %d, '%s', %d.5)", t,
                        p * 10 + k, p, k % 2 == 0 ? "done" : "open", k));
        }
      }
      Run(conn, "COMMIT");
    }
    std::printf("onboarded 20 tenants\n");

    // Tenant-scoped dashboard: arbitrarily complex SQL, routed to one node.
    auto dash = Run(conn,
                    "SELECT p.name, count(*), sum(t.hours) "
                    "FROM projects p JOIN tasks t ON p.tenant_id = t.tenant_id "
                    "AND p.project_id = t.project_id "
                    "WHERE p.tenant_id = 7 AND t.state = 'open' "
                    "GROUP BY p.name ORDER BY p.name");
    std::printf("tenant 7 open work:\n");
    for (const auto& row : dash.rows) {
      std::printf("  %-8s %lld tasks, %.1f hours\n",
                  row[0].text_value().c_str(),
                  static_cast<long long>(row[1].int_value()),
                  row[2].float_value());
    }

    // Cross-tenant analytics: a parallel co-located join over all shards.
    auto top = Run(conn,
                   "SELECT t.tenant_id, sum(t.hours) AS total "
                   "FROM tasks t GROUP BY t.tenant_id "
                   "ORDER BY total DESC LIMIT 3");
    std::printf("busiest tenants:\n");
    for (const auto& row : top.rows) {
      std::printf("  tenant %lld: %.1f hours\n",
                  static_cast<long long>(row[0].int_value()),
                  row[1].float_value());
    }

    // Tenant placement control (§2.1): move a noisy tenant's shard group.
    const citus::CitusTable* accounts = deploy.metadata().Find("accounts");
    int noisy_idx = accounts->ShardIndexForHash(
        sql::Datum::Int8(7).PartitionHash());
    const citus::ShardInterval& shard =
        accounts->shards[static_cast<size_t>(noisy_idx)];
    std::string target = shard.placement == "worker1" ? "worker2" : "worker1";
    auto session = deploy.coordinator()->OpenSession();
    citus::Rebalancer rebalancer(deploy.extension(deploy.coordinator()));
    Status moved = rebalancer.MoveShard(
        *session, shard.shard_id, shard.placement, target);
    std::printf("moved tenant 7's shard group to %s: %s (write-blocked %.1f ms)\n",
                target.c_str(), moved.ToString().c_str(),
                static_cast<double>(rebalancer.last_move_blocked_time) / 1e6);
    auto recheck = Run(conn,
                       "SELECT count(*) FROM tasks WHERE tenant_id = 7");
    std::printf("tenant 7 tasks after move: %lld\n",
                static_cast<long long>(recheck.rows[0][0].int_value()));
  });
  sim.Run();
  sim.Shutdown();
  return 0;
}
