// High-performance CRUD example (paper §2.3): a JSON document store
// distributed by key, exercising fast-path routed CRUD, every-worker-as-
// coordinator connections, multi-node atomic updates, and the connection
// scaling limits the paper discusses.
#include <cstdio>

#include "citus/deploy.h"
#include "common/str.h"

using namespace citusx;

namespace {

engine::QueryResult Run(net::Connection& conn, const std::string& sql) {
  auto r = conn.Query(sql);
  if (!r.ok()) {
    std::printf("!! %s\n   %s\n", sql.c_str(), r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 2;
  citus::Deployment deploy(&sim, options);

  sim.Spawn("crud_app", [&] {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return;
    net::Connection& conn = **conn_r;
    Run(conn,
        "CREATE TABLE documents (key bigint PRIMARY KEY, doc jsonb, "
        "updated_at timestamp)");
    Run(conn, "SELECT create_distributed_table('documents', 'key')");

    // Create.
    for (int k = 0; k < 50; k++) {
      Run(conn, StrFormat(
                    "INSERT INTO documents VALUES (%d, '{\"views\": 0, "
                    "\"tags\": [\"new\"]}'::jsonb, '2021-06-20 12:00:00')", k));
    }
    // Read (fast path: one round trip to one shard).
    sim::Time t0 = sim.now();
    auto doc = Run(conn, "SELECT doc FROM documents WHERE key = 17");
    std::printf("read key 17 in %.2f ms: %s\n",
                static_cast<double>(sim.now() - t0) / 1e6,
                doc.rows[0][0].ToText().c_str());
    // Update.
    Run(conn,
        "UPDATE documents SET doc = '{\"views\": 1}'::jsonb WHERE key = 17");
    // Delete.
    Run(conn, "DELETE FROM documents WHERE key = 18");

    // Scale the number of connections (§2.3): any node can process
    // distributed queries, so clients connect to workers directly.
    auto worker_conn = deploy.Connect("worker1");
    if (worker_conn.ok()) {
      auto via_worker =
          Run(**worker_conn, "SELECT doc FROM documents WHERE key = 17");
      std::printf("read key 17 via worker1: %s\n",
                  via_worker.rows[0][0].ToText().c_str());
    }

    // Atomic update across nodes (§5: "cleanse bad data"): a multi-shard
    // UPDATE runs as one distributed 2PC transaction.
    auto cleansed = Run(conn,
                        "UPDATE documents SET doc = '{\"views\": 0}'::jsonb "
                        "WHERE key >= 0");
    std::printf("cleansed %lld documents atomically (2PC across workers)\n",
                static_cast<long long>(cleansed.rows_affected));

    // Scan across objects (parallel distributed SELECT).
    auto stats = Run(conn, "SELECT count(*) FROM documents");
    std::printf("documents remaining: %lld\n",
                static_cast<long long>(stats.rows[0][0].int_value()));

    // Connection limits are real: the gate refuses when a node is full.
    citus::CitusExtension* ext = deploy.extension(deploy.coordinator());
    std::printf("coordinator outgoing connections: worker1=%d worker2=%d\n",
                ext->outgoing_connections("worker1"),
                ext->outgoing_connections("worker2"));
  });
  sim.Run();
  sim.Shutdown();
  return 0;
}
