// Real-time analytics example (paper §2.2 and Figure 2): ingest a JSON event
// stream with COPY, incrementally pre-aggregate it into a rollup with
// INSERT..SELECT, and serve dashboard queries from both the rollup and the
// raw events — the VeniceDB pattern from §5 in miniature.
#include <cstdio>

#include "citus/deploy.h"
#include "common/str.h"
#include "workload/gharchive.h"

using namespace citusx;

namespace {

engine::QueryResult Run(net::Connection& conn, const std::string& sql) {
  auto r = conn.Query(sql);
  if (!r.ok()) {
    std::printf("!! %s\n   %s\n", sql.c_str(), r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  sim::Simulation sim;
  citus::DeploymentOptions options;
  options.num_workers = 4;
  citus::Deployment deploy(&sim, options);

  sim.Spawn("pipeline", [&] {
    auto conn_r = deploy.Connect();
    if (!conn_r.ok()) return;
    net::Connection& conn = **conn_r;

    workload::GhArchiveConfig config;
    config.postgres_mention_pct = 0.05;
    if (!workload::GhCreateSchema(conn, config).ok()) return;
    if (!workload::GhCreateCommitsTable(conn, config).ok()) return;

    // Ingest three "days" of events through COPY (parallelized per shard).
    Rng rng(11);
    for (int day = 1; day <= 3; day++) {
      sim::Time t0 = sim.now();
      auto rows = workload::GhGenerateEvents(rng, config, 4000, 2020, 2, day);
      auto copied = conn.CopyIn("github_events", {}, std::move(rows));
      if (!copied.ok()) return;
      std::printf("day %d: ingested %lld events in %.0f ms (COPY)\n", day,
                  static_cast<long long>(copied->rows_affected),
                  static_cast<double>(sim.now() - t0) / 1e6);
      // Incremental rollup for the new day: a co-located INSERT..SELECT that
      // runs on each shard pair in parallel (Figure 2's transformation).
      t0 = sim.now();
      auto rolled = Run(conn, StrFormat(
          "INSERT INTO push_commits SELECT event_id, "
          "(data->>'created_at')::date, "
          "jsonb_array_length(data->'payload'->'commits') "
          "FROM github_events WHERE data->>'type' = 'PushEvent' AND "
          "(data->>'created_at')::date = '2020-02-%02d'::date", day));
      std::printf("day %d: rollup of %lld pushes in %.0f ms (INSERT..SELECT)\n",
                  day, static_cast<long long>(rolled.rows_affected),
                  static_cast<double>(sim.now() - t0) / 1e6);
    }

    // Dashboard query 1 (rollup): commit volume per day — cheap, served
    // from the pre-aggregated table.
    auto volume = Run(conn,
                      "SELECT day, count(*), sum(n_commits) FROM push_commits "
                      "GROUP BY day ORDER BY day");
    std::printf("\ncommit volume per day (from rollup):\n");
    for (const auto& row : volume.rows) {
      std::printf("  %s: %lld pushes, %lld commits\n", row[0].ToText().c_str(),
                  static_cast<long long>(row[1].int_value()),
                  static_cast<long long>(row[2].int_value()));
    }

    // Dashboard query 2 (raw events): needle-in-haystack search on the
    // trigram index.
    sim::Time t0 = sim.now();
    auto mentions = Run(conn, workload::GhDashboardQuery());
    std::printf("\ncommits mentioning postgres (raw events, GIN index, %.1f ms):\n",
                static_cast<double>(sim.now() - t0) / 1e6);
    for (const auto& row : mentions.rows) {
      std::printf("  %s: %lld commits\n", row[0].ToText().c_str(),
                  static_cast<long long>(row[1].int_value()));
    }

    // Dashboard query 3: the §5 VeniceDB shape — per-entity averages
    // computed in a pushed-down subquery, then averaged globally.
    auto nested = Run(conn,
                      "SELECT avg(pushes) FROM (SELECT event_id, "
                      "sum(n_commits) AS pushes FROM push_commits "
                      "GROUP BY event_id) AS per_event");
    std::printf("\nmean commits per push event: %.2f\n",
                nested.rows[0][0].float_value());
  });
  sim.Run();
  sim.Shutdown();
  return 0;
}
